"""Fused, chunked squared-distance kernels.

Every distance in the package is the expansion
``||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2``: one BLAS product plus cheap
rank-1 corrections.  The kernels here fuse the corrections into preallocated
workspace buffers (no temporaries) and *tile* the point axis so the
``(chunk, k)`` scratch block stays cache-resident instead of materialising an
``(n, k)`` float64 array per call.

Dtype policy (see :mod:`~repro.kernels.dtypes`): the BLAS product runs in the
points' storage dtype — float32 inputs use float32 GEMMs, halving bandwidth —
while the squared-distance *outputs* handed to cost accumulation and sampling
are always float64.

On the float64 path every kernel is bit-identical to the naive expression it
replaces: fusion only flips ``a - 2b`` into ``(-2b) + a`` (exact in IEEE
arithmetic) and reductions return the same element the gather returned.
"""

from __future__ import annotations

import os

import numpy as np

from .workspace import Workspace

__all__ = [
    "DEFAULT_CHUNK_BYTES",
    "assign_chunked",
    "chunk_rows_for",
    "min_sq_update",
    "pooled_row_norms",
    "sq_distances_to_center",
]

#: Target size of the per-tile ``(chunk, k)`` scratch block.  256 KiB keeps
#: the block comfortably inside a typical per-core L2 cache while leaving the
#: BLAS product enough rows to amortise its call overhead.
DEFAULT_CHUNK_BYTES = 256 * 1024

_ENV_CHUNK_ROWS = "REPRO_KERNEL_CHUNK_ROWS"

def _override_from_env() -> int | None:
    """Parse the env override leniently: a typo must not break ``import repro``."""
    raw = os.environ.get(_ENV_CHUNK_ROWS)
    if not raw:
        return None
    try:
        return max(1, int(raw))
    except ValueError:
        import warnings

        warnings.warn(
            f"ignoring invalid {_ENV_CHUNK_ROWS}={raw!r} (expected an integer)",
            RuntimeWarning,
            stacklevel=2,
        )
        return None


#: Read once at import: the env override sits on the per-merge hot path, and
#: ``os.environ.get`` is measurable there.  Use :func:`set_chunk_rows_override`
#: (tests, tuning) to change it at runtime.
_chunk_rows_override: int | None = _override_from_env()


def set_chunk_rows_override(rows: int | None) -> None:
    """Force every tile to ``rows`` rows (``None`` restores auto-sizing)."""
    global _chunk_rows_override
    _chunk_rows_override = None if rows is None else max(1, int(rows))


def chunk_rows_for(
    num_centers: int,
    itemsize: int,
    chunk_bytes: int | None = None,
    dim: int | None = None,
) -> int:
    """Rows per tile so the per-tile working set fits the chunk budget.

    A tile touches ``rows * num_centers`` scratch cells *plus* the
    ``rows * dim`` point block the GEMM streams through, so the budget is
    divided by ``(num_centers + dim) * itemsize`` when the caller supplies
    the point dimensionality — otherwise high-dimensional batches (d >> k)
    would overshoot the budget by ``d / k``.  ``dim=None`` preserves the
    scratch-only sizing for callers that tile something other than points.

    The ``REPRO_KERNEL_CHUNK_ROWS`` environment variable (read at import) or
    :func:`set_chunk_rows_override` overrides the computed value (tuning
    knob; see ``docs/performance.md``).
    """
    if _chunk_rows_override is not None:
        return _chunk_rows_override
    budget = DEFAULT_CHUNK_BYTES if chunk_bytes is None else chunk_bytes
    per_row = num_centers + (int(dim) if dim is not None else 0)
    return max(64, budget // max(1, per_row * itemsize))


def pooled_row_norms(points: np.ndarray, workspace: Workspace, name: str) -> np.ndarray:
    """Row-wise ``||x||^2`` into a pooled buffer, in the points' storage dtype.

    The internal pipeline's norm primitive: unlike the public
    :func:`~repro.kmeans.cost.squared_norms` (which always returns float64
    for cost accumulation), this keeps float32 norms float32 so the
    seeding/assignment kernels never touch a casting ufunc loop.
    """
    return np.einsum(
        "ij,ij->i",
        points,
        points,
        out=workspace.buffer(name, points.shape[0], points.dtype),
    )


def sq_distances_to_center(
    points: np.ndarray,
    center: np.ndarray,
    points_sq: np.ndarray,
    out: np.ndarray,
) -> np.ndarray:
    """Squared distances from every point to ONE center, into ``out``.

    ``out`` must have shape ``(n,)`` and the points' dtype.  This is the
    k-means++ round primitive: one matvec plus three in-place corrections,
    zero temporaries.
    """
    np.dot(points, center, out=out)
    out *= -2.0
    out += points_sq
    # float(...) keeps weak scalar promotion: adding a float64 *array scalar*
    # to a float32 buffer would silently upcast the whole operation.
    out += float(np.dot(center, center))
    np.maximum(out, 0.0, out=out)
    return out


def min_sq_update(closest_sq: np.ndarray, candidate_sq: np.ndarray) -> np.ndarray:
    """Fold a new center's distances into the running per-point minimum."""
    return np.minimum(closest_sq, candidate_sq, out=closest_sq)


def assign_chunked(
    points: np.ndarray,
    centers: np.ndarray,
    points_sq: np.ndarray,
    workspace: Workspace | None = None,
    out_labels: np.ndarray | None = None,
    out_sq: np.ndarray | None = None,
    chunk_bytes: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Nearest-center labels and float64 squared distances, tiled.

    The argmin of ``||x - c||^2`` over centers needs only the partial
    distances ``||c||^2 - 2 x.c`` (the ``||x||^2`` term is constant per
    point); the per-point norm is added back afterwards to recover true
    squared distances.  Work proceeds in row tiles whose ``(rows, k)``
    scratch block is bounded by ``chunk_bytes`` and pooled in ``workspace``.

    Parameters
    ----------
    points / centers:
        ``(n, d)`` and ``(k, d)`` arrays of the same dtype.
    points_sq:
        Precomputed ``||x||^2`` of shape ``(n,)``, in either the points'
        storage dtype (the internal pipeline keeps per-point norms native)
        or float64; the returned distances are float64 regardless.
    workspace:
        Scratch pool; ``None`` allocates fresh buffers (reference mode).
    out_labels / out_sq:
        Optional destinations of shape ``(n,)`` (``intp`` / float64).  When
        omitted they are drawn from the workspace under the ``assign.*``
        names, so callers that hold results across *another* ``assign_chunked``
        call must pass their own.
    """
    ws = workspace if workspace is not None else Workspace()
    n, _ = points.shape
    k = centers.shape[0]
    if out_labels is None:
        out_labels = ws.buffer("assign.labels", n, np.intp)
    if out_sq is None:
        out_sq = ws.buffer("assign.sq", n, np.float64)

    c_sq = ws.buffer("assign.center_sq", k, centers.dtype)
    np.einsum("ij,ij->i", centers, centers, out=c_sq)

    rows = min(n, chunk_rows_for(k, points.itemsize, chunk_bytes, dim=points.shape[1])) or 1
    partial_full = ws.buffer("assign.partial", (rows, k), points.dtype)
    min_full = ws.buffer("assign.min", rows, points.dtype)
    for start in range(0, n, rows):
        stop = min(start + rows, n)
        span = stop - start
        partial = partial_full[:span]
        np.matmul(points[start:stop], centers.T, out=partial)
        partial *= -2.0
        partial += c_sq
        partial.argmin(axis=1, out=out_labels[start:stop])
        # The minimum IS the value at the argmin: same element, bit-exact,
        # and a reduction avoids a fancy-indexed gather (and its arange).
        min_part = min_full[:span]
        partial.min(axis=1, out=min_part)
        sq_part = out_sq[start:stop]
        np.add(min_part, points_sq[start:stop], out=sq_part)
        np.maximum(sq_part, 0.0, out=sq_part)
    return out_labels, out_sq
