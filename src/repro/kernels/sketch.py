"""Seeded Johnson–Lindenstrauss sketching for the merge/query hot path.

Every hot loop in the package — k-means++ seeding, Lloyd assignment,
sensitivity scoring — is a dense distance computation whose cost scales
linearly with the point dimensionality ``d``.  A JL projection into
``s << d`` dimensions preserves pairwise squared distances (and therefore
k-means costs) up to a ``1 ± eps`` factor with ``s = O(log(k) / eps^2)``, so
those loops can run entirely in the sketched space while the *outputs* —
sampled coreset points, reported centers and costs — stay full-precision in
the original space.

Two oblivious transforms are provided:

* ``"gaussian"`` — a dense ``(d, s)`` matrix of i.i.d. normals scaled by
  ``1/sqrt(s)`` (the classical JL construction); and
* ``"countsketch"`` — the sparse CountSketch map (one ``±1`` per input
  dimension, hashed to a single output column), materialised as the same
  dense ``(d, s)`` matrix so projections share the one-GEMM code path.

Determinism contract: the projection matrix for a given input dimension is a
pure function of ``(entropy, kind, sketch_dim, d)``, where ``entropy`` is the
owning :class:`~repro.coreset.construction.CoresetConstructor`'s span-key
entropy.  The entropy is already checkpointed, so a restored constructor
rebuilds bit-identical matrices with no new checkpoint state; the 3-element
seed key cannot collide with the 4-element span keys used for merge
randomness.
"""

from __future__ import annotations

import numpy as np

from .workspace import Workspace

__all__ = ["SKETCH_KINDS", "Sketcher", "sketch_for", "top2_chunked"]

#: Supported sketch transforms, in the order shown by ``--help``.
SKETCH_KINDS = ("gaussian", "countsketch")

#: Domain-separation tag for the matrix seed key (second entropy word), so
#: sketch randomness can never collide with another 3-word derived stream.
_MATRIX_STREAM_TAG = 0x534B4554  # "SKET"


class Sketcher:
    """A seeded JL transform with per-dimension matrix caching.

    Parameters
    ----------
    sketch_dim:
        Target dimensionality ``s``.  Streams whose dimension is ``<= s``
        are left unprojected (:meth:`active_for` returns False), so a single
        configuration is safe across datasets of any width.
    kind:
        ``"gaussian"`` or ``"countsketch"`` (see module docstring).
    entropy:
        Root entropy the projection matrices are derived from.  Owners pass
        their checkpointed span-key entropy so snapshot→restore rebuilds
        bit-identical matrices.
    """

    def __init__(self, sketch_dim: int, kind: str = "gaussian", entropy: int = 0) -> None:
        if int(sketch_dim) <= 0:
            raise ValueError(f"sketch_dim must be positive, got {sketch_dim}")
        if kind not in SKETCH_KINDS:
            raise ValueError(
                f"unknown sketch kind {kind!r}; available: {SKETCH_KINDS}"
            )
        self.sketch_dim = int(sketch_dim)
        self.kind = kind
        self._entropy = int(entropy)
        # (d, dtype.name) -> projection matrix.  A process sees a handful of
        # dimensions, and matrices are read-only, so the cache is tiny.
        self._matrices: dict[tuple[int, str], np.ndarray] = {}

    @property
    def entropy(self) -> int:
        """The root entropy the matrices are derived from."""
        return self._entropy

    def reseed(self, entropy: int) -> None:
        """Re-derive matrices from new root entropy (checkpoint restore)."""
        entropy = int(entropy)
        if entropy != self._entropy:
            self._entropy = entropy
            self._matrices.clear()

    def active_for(self, dimension: int) -> bool:
        """Whether points of this dimensionality are actually projected."""
        return int(dimension) > self.sketch_dim

    def matrix(self, dimension: int, dtype: np.dtype | type = np.float64) -> np.ndarray:
        """The ``(dimension, sketch_dim)`` projection matrix, cached per dtype.

        The float64 matrix is the master; narrower dtypes are cast from it,
        so float32 and float64 streams sketch through numerically consistent
        (rounded, not re-drawn) transforms.
        """
        d = int(dimension)
        name = np.dtype(dtype).name
        cached = self._matrices.get((d, name))
        if cached is not None:
            return cached
        master = self._matrices.get((d, "float64"))
        if master is None:
            master = self._build_matrix(d)
            master.setflags(write=False)
            self._matrices[(d, "float64")] = master
        if name == "float64":
            return master
        narrowed = master.astype(np.dtype(dtype))
        narrowed.setflags(write=False)
        self._matrices[(d, name)] = narrowed
        return narrowed

    def _build_matrix(self, d: int) -> np.ndarray:
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=[self._entropy, _MATRIX_STREAM_TAG, d])
        )
        s = self.sketch_dim
        if self.kind == "gaussian":
            return rng.standard_normal((d, s)) / np.sqrt(s)
        # CountSketch: every input dimension lands in exactly one output
        # column with a random sign.  Dense representation so projection is
        # the same single GEMM as the Gaussian variant.
        matrix = np.zeros((d, s), dtype=np.float64)
        columns = rng.integers(0, s, size=d)
        signs = rng.integers(0, 2, size=d) * 2.0 - 1.0
        matrix[np.arange(d), columns] = signs
        return matrix

    def project(self, points: np.ndarray) -> np.ndarray:
        """Project ``(n, d)`` points to ``(n, sketch_dim)``, always float32.

        The sketch is approximate by construction (the JL distortion dwarfs
        float32 rounding), so half-width storage halves sketch-slab memory
        and routes the sketched seeding/Lloyd loops through the float32
        kernels — all while the exact coordinates keep their own dtype.
        """
        mat = self.matrix(points.shape[1], np.float32)
        return np.asarray(points, dtype=np.float32) @ mat


def sketch_for(sketcher: "Sketcher | None", points: np.ndarray) -> np.ndarray | None:
    """The sketched view of ``points`` — or None when sketching is off/inactive.

    The shared ingest-site helper: every path that wraps raw stream blocks
    into :class:`~repro.coreset.bucket.WeightedPointSet` instances calls this
    so the project-once-per-point rule has a single implementation.
    """
    if sketcher is None or points.shape[0] == 0 or not sketcher.active_for(points.shape[1]):
        return None
    return sketcher.project(points)


def top2_chunked(
    points: np.ndarray,
    centers: np.ndarray,
    points_sq: np.ndarray,
    workspace: Workspace | None = None,
    out_first: np.ndarray | None = None,
    out_second: np.ndarray | None = None,
    out_first_sq: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Nearest and second-nearest center per point, tiled like ``assign_chunked``.

    The candidate-generation kernel of the exact re-rank: distances are
    computed in the (sketched) space of ``points``/``centers`` and only the
    two best center indices per point survive, for the caller to re-score
    with exact full-width coordinates.  Returns ``(first, second, first_sq)``
    where ``first_sq`` is the float64 squared distance to the nearest center
    (used for worst-served empty-cluster re-seeding).  With ``k == 1`` the
    second candidate equals the first.
    """
    from .distance import chunk_rows_for

    ws = workspace if workspace is not None else Workspace()
    n, d = points.shape
    k = centers.shape[0]
    if out_first is None:
        out_first = ws.buffer("top2.first", n, np.intp)
    if out_second is None:
        out_second = ws.buffer("top2.second", n, np.intp)
    if out_first_sq is None:
        out_first_sq = ws.buffer("top2.first_sq", n, np.float64)

    ctr = centers if centers.dtype == points.dtype else centers.astype(points.dtype)
    c_sq = ws.buffer("top2.center_sq", k, points.dtype)
    np.einsum("ij,ij->i", ctr, ctr, out=c_sq)

    rows = min(n, chunk_rows_for(k, points.itemsize, dim=d)) or 1
    partial_full = ws.buffer("top2.partial", (rows, k), points.dtype)
    min_full = ws.buffer("top2.min", rows, points.dtype)
    for start in range(0, n, rows):
        stop = min(start + rows, n)
        span = stop - start
        partial = partial_full[:span]
        np.matmul(points[start:stop], ctr.T, out=partial)
        partial *= -2.0
        partial += c_sq
        first = out_first[start:stop]
        partial.argmin(axis=1, out=first)
        min_part = min_full[:span]
        partial.min(axis=1, out=min_part)
        sq_part = out_first_sq[start:stop]
        np.add(min_part, points_sq[start:stop], out=sq_part)
        np.maximum(sq_part, 0.0, out=sq_part)
        if k < 2:
            out_second[start:stop] = first
            continue
        # Mask the winner and argmin again: exact second-best, and ties keep
        # the lowest index (matching argmin's convention).
        span_rows = np.arange(span)
        winners = partial[span_rows, first].copy()
        partial[span_rows, first] = np.inf
        partial.argmin(axis=1, out=out_second[start:stop])
        partial[span_rows, first] = winners
    return out_first, out_second, out_first_sq
