"""``np.bincount``-based weighted scatters.

``np.add.at`` is the idiomatic scatter-add but falls back to a per-element
ufunc inner loop; ``np.bincount`` performs the same index-ordered
accumulation in a single C pass and is several times faster at every size the
update path sees.  Both iterate the label array in order, so for float64
weights the per-cluster sums are bit-identical between the two.

Accumulation is always float64 (``np.bincount`` guarantees a float64 result),
regardless of the points' storage dtype — this is half of the dtype policy's
"honest accumulators" rule.
"""

from __future__ import annotations

import numpy as np

from .workspace import Workspace

__all__ = ["weighted_bincount", "weighted_label_sums"]

#: Column-offset vectors by dimension, shared by every scatter call: ``d``
#: takes a handful of values per process, and the arrays are read-only, so a
#: module cache keeps the steady state allocation-free.
_COLUMN_OFFSETS: dict[int, np.ndarray] = {}


def _column_offsets(d: int) -> np.ndarray:
    offsets = _COLUMN_OFFSETS.get(d)
    if offsets is None:
        offsets = np.arange(d)
        offsets.setflags(write=False)
        _COLUMN_OFFSETS[d] = offsets
    return offsets


def weighted_bincount(labels: np.ndarray, weights: np.ndarray, k: int) -> np.ndarray:
    """Per-cluster total weight: ``out[j] = sum(weights[labels == j])``.

    Drop-in replacement for ``np.add.at(out, labels, weights)`` on a zeroed
    ``(k,)`` float64 array, at bincount speed.
    """
    if labels.shape[0] == 0:
        # np.bincount returns int64 zeros for empty weighted input.
        return np.zeros(k, dtype=np.float64)
    return np.bincount(labels, weights=weights, minlength=k)


def weighted_label_sums(
    points: np.ndarray,
    labels: np.ndarray,
    weights: np.ndarray,
    k: int,
    workspace: Workspace | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Weighted per-cluster coordinate sums and total weights in one pass.

    The scatter is a flat ``np.bincount`` over ``label * d + column`` indices.
    Returns ``(sums, cluster_weight)`` of shapes ``(k, d)`` and ``(k,)``,
    both float64.  ``workspace`` pools the ``(n, d)`` weighted-points scratch
    and the flat index block (the bincount outputs are ``k``-sized and cheap).
    """
    n, d = points.shape
    if n == 0:
        return np.zeros((k, d), dtype=np.float64), np.zeros(k, dtype=np.float64)
    ws = workspace if workspace is not None else Workspace()
    weighted = ws.buffer("scatter.weighted", (n, d), np.float64)
    np.multiply(points, weights[:, None], out=weighted)
    flat_index = ws.buffer("scatter.flat_index", (n, d), np.intp)
    np.multiply(labels[:, None], d, out=flat_index)
    flat_index += _column_offsets(d)
    sums = np.bincount(
        flat_index.ravel(), weights=weighted.ravel(), minlength=k * d
    ).reshape(k, d)
    cluster_weight = np.bincount(labels, weights=weights, minlength=k)
    return sums, cluster_weight
