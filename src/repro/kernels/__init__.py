"""Compute-kernel layer: pooled scratch, fused chunked distances, fast scatters.

The update path of every streaming algorithm in this reproduction bottoms out
in the same three numeric primitives, and this package is their single home:

* :mod:`~repro.kernels.workspace` — a per-structure :class:`Workspace` buffer
  pool.  A coreset merge has a fixed input shape (at most ``r * m`` points of
  dimension ``d``), so after the first merge every scratch array (distance
  blocks, CDFs, labels, sampled-index buffers) is reused and the steady-state
  merge performs no new scratch allocations.
* :mod:`~repro.kernels.distance` — fused, *chunked* pairwise-distance kernels
  computing ``||x||^2 - 2 x.c + ||c||^2`` tile by tile, so the scratch stays
  in a bounded workspace block instead of materialising an ``(n, k)`` float64
  temporary per call.
* :mod:`~repro.kernels.scatter` — ``np.bincount``-based weighted scatters
  (per-cluster sums, weights, costs) replacing every ``np.add.at`` (which
  falls back to a per-element ufunc inner loop).
* :mod:`~repro.kernels.sketch` — opt-in seeded Johnson–Lindenstrauss
  projections (dense Gaussian or CountSketch).  Points are projected once at
  ingest and the merge/query inner loops run in the sketched space; sampled
  outputs, centers, and reported costs stay full-precision via an exact
  top-2 re-rank.
* :mod:`~repro.kernels.dtypes` — the compute-dtype policy.  Points may be
  stored and multiplied in ``float32`` (halving memory bandwidth end to end),
  but costs, weights, and CDF accumulators always use ``float64`` so quality
  metrics and sampling probabilities stay honest.

On the default ``float64`` path, fusion only reorders commutative additions
and moves results into preallocated buffers — and kernel tiling is a pure
function of problem shape — so every bit-identity contract of the package
(batch==point ingestion, snapshot→restore→ingest, serial==thread==process)
holds exactly as before.  (Outputs can differ from *previous releases* in
the last ulp: BLAS summation order depends on call shapes, and the seeding
loop now tracks assignments incrementally.)
"""

from .dtypes import DEFAULT_DTYPE, SUPPORTED_DTYPES, resolve_dtype
from .distance import (
    assign_chunked,
    chunk_rows_for,
    min_sq_update,
    pooled_row_norms,
    sq_distances_to_center,
)
from .scatter import weighted_bincount, weighted_label_sums
from .sketch import SKETCH_KINDS, Sketcher, sketch_for, top2_chunked
from .workspace import Workspace

__all__ = [
    "DEFAULT_DTYPE",
    "SKETCH_KINDS",
    "SUPPORTED_DTYPES",
    "Sketcher",
    "Workspace",
    "assign_chunked",
    "chunk_rows_for",
    "min_sq_update",
    "pooled_row_norms",
    "resolve_dtype",
    "sketch_for",
    "sq_distances_to_center",
    "top2_chunked",
    "weighted_bincount",
    "weighted_label_sums",
]
