"""Reusable scratch-buffer pool for the update- and query-path kernels.

A coreset merge works on inputs of bounded shape — at most ``r * m`` weighted
points of dimension ``d`` — yet the pre-kernel implementation re-allocated
every scratch array (distance vectors, score CDFs, label buffers, sampled
indices) on every merge.  :class:`Workspace` removes that: each call site
asks for a buffer by *name*, and the pool hands back a view into a grow-only
backing array, so the steady state (same shapes merge after merge) performs
zero new scratch allocations.

Design constraints:

* **Correctness over sharing** — buffers are keyed by name, and two live
  buffers with different names never alias.  A kernel that needs three
  scratch vectors asks for three names.
* **No state leakage** — buffers are handed out *uninitialised* (the first
  write wins); kernels must fully overwrite what they read.  The property
  suite interleaves pooled and fresh-allocation runs to prove outputs are
  identical.
* **Not a checkpointable object** — a workspace is pure scratch.  It is
  deliberately excluded from every ``state_dict`` and never crosses process
  boundaries.
* **Single-owner** — one workspace belongs to one structure (a constructor,
  a query engine); it is not thread-safe and must not be shared across
  shards.
"""

from __future__ import annotations

from math import prod

import numpy as np

__all__ = ["Workspace"]


class Workspace:
    """Keyed pool of reusable scratch arrays.

    ``buffer(name, shape, dtype)`` returns an array of exactly the requested
    shape backed by a per-``(name, dtype)`` flat pool.  The pool only ever
    grows: requesting a larger size re-allocates the backing once, after
    which every request at or below that size is allocation-free.
    """

    __slots__ = ("_pools",)

    def __init__(self) -> None:
        # name -> [backing, dtype.char, shape, view]; the cached view makes
        # the steady-state call (same name, same shape, same dtype) a dict
        # lookup plus two comparisons — no array-object churn on hot paths.
        self._pools: dict[str, list] = {}

    def buffer(
        self,
        name: str,
        shape: int | tuple[int, ...],
        dtype: np.dtype | type = np.float64,
    ) -> np.ndarray:
        """A scratch array of ``shape`` — contents are undefined until written.

        Repeated requests under the same ``name`` and dtype return views of
        the same backing memory, so a buffer must not be expected to survive
        the next request for its name.
        """
        if isinstance(shape, int):
            shape = (shape,)
        dt = np.dtype(dtype)
        entry = self._pools.get(name)
        if entry is not None and entry[1] == dt.char and entry[2] == shape:
            return entry[3]
        size = prod(shape)
        backing = entry[0] if entry is not None and entry[1] == dt.char else None
        if backing is None or backing.size < size:
            backing = np.empty(max(size, 1), dtype=dt)
        view = backing[:size]
        if len(shape) != 1:
            view = view.reshape(shape)
        self._pools[name] = [backing, dt.char, shape, view]
        return view

    def zeros(
        self,
        name: str,
        shape: int | tuple[int, ...],
        dtype: np.dtype | type = np.float64,
    ) -> np.ndarray:
        """Like :meth:`buffer` but cleared to zero before returning."""
        out = self.buffer(name, shape, dtype)
        out.fill(0)
        return out

    @property
    def pooled_bytes(self) -> int:
        """Total bytes currently held by the pool (for instrumentation)."""
        return sum(entry[0].nbytes for entry in self._pools.values())

    @property
    def pooled_buffers(self) -> int:
        """Number of distinct named pools currently allocated."""
        return len(self._pools)

    def clear(self) -> None:
        """Drop every pooled backing array (buffers handed out stay valid)."""
        self._pools.clear()
