"""The compute-dtype policy shared by every kernel and data structure.

Two storage dtypes are supported for point coordinates:

* ``float64`` (the default) — bit-compatible with the original
  implementation; every intermediate is double precision.
* ``float32`` — opt-in via ``StreamingConfig(dtype="float32")`` or the CLI's
  ``--dtype float32``.  Point blocks, coreset buckets, shared-memory slabs,
  and the GEMM/matvec inputs are all single precision, halving the memory
  bandwidth of the update path.

Regardless of the storage dtype, *accumulators are always float64*: squared
distances handed to cost sums, sampling CDFs, per-cluster weights, and
k-means costs.  A float32 coordinate read is cheap; a float32 running sum
over a long stream is silently lossy, so the policy keeps the former and
forbids the latter.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "DEFAULT_DTYPE",
    "SUPPORTED_DTYPES",
    "coerce_storage",
    "resolve_dtype",
    "storage_dtype_of",
]

#: Storage dtype used when nothing was requested explicitly.
DEFAULT_DTYPE = np.dtype(np.float64)

#: Point-coordinate dtypes the kernel layer accepts.
SUPPORTED_DTYPES: tuple[np.dtype, ...] = (np.dtype(np.float32), np.dtype(np.float64))


def resolve_dtype(dtype: str | np.dtype | type | None) -> np.dtype:
    """Validate and normalise a requested storage dtype.

    Accepts ``None`` (the default), dtype-likes, and the strings
    ``"float32"`` / ``"float64"``.  Anything outside
    :data:`SUPPORTED_DTYPES` raises ``ValueError`` — integer or float16
    streams must be converted by the caller so precision loss is explicit.
    """
    if dtype is None:
        return DEFAULT_DTYPE
    resolved = np.dtype(dtype)
    if resolved not in SUPPORTED_DTYPES:
        raise ValueError(
            f"unsupported point dtype {resolved.name!r}; "
            f"supported: {', '.join(d.name for d in SUPPORTED_DTYPES)}"
        )
    return resolved


def storage_dtype_of(points: np.ndarray) -> np.dtype:
    """The storage dtype an array should keep: float32 stays, all else is float64."""
    return points.dtype if points.dtype in SUPPORTED_DTYPES else DEFAULT_DTYPE


def coerce_storage(points) -> np.ndarray:
    """``asarray`` that applies the storage-dtype policy in one place.

    float32 and float64 arrays pass through zero-copy; every other dtype
    (ints, float16, ...) is cast to float64.  The single point of change if
    the policy ever grows another dtype.
    """
    arr = np.asarray(points)
    if arr.dtype not in SUPPORTED_DTYPES:
        arr = arr.astype(DEFAULT_DTYPE)
    return arr
