"""Checkpoint/restore for live streaming-clusterer state.

The paper's structures summarise unbounded streams into compact
merge-and-reduce state — exactly the object worth persisting.  This package
snapshots a *live* clusterer (tree levels, bucket buffers, coreset caches,
warm-start serving state, and every random-generator stream) into a
versioned on-disk format and restores it so that continued ingestion is
**bit-identical** to a process that never stopped.

Public API::

    from repro.checkpoint import save_checkpoint, load_checkpoint

    save_checkpoint(clusterer, "run.ckpt")          # or clusterer.snapshot(path)
    clusterer = load_checkpoint("run.ckpt")         # or Class.restore(path)

Every :class:`~repro.core.base.StreamingClusterer` also exposes
``snapshot(path)`` / ``Class.restore(path)`` convenience methods that call
into this package.  See :mod:`repro.checkpoint.store` for the on-disk layout
and ``docs/operations.md`` for resume semantics and the crash-recovery
runbook.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING

from .registry import registered_classes, resolve_class
from .state import pack_state, rng_from_state, rng_state, unpack_state
from .store import (
    CHECKPOINT_PREFIX,
    FORMAT_VERSION,
    MANIFEST_NAME,
    STATE_NAME,
    CheckpointError,
    CheckpointStore,
    Filesystem,
    active_filesystem,
    config_fingerprint,
    latest_good_checkpoint,
    list_checkpoints,
    load_arrays,
    prune_checkpoints,
    read_manifest,
    shard_file_name,
    use_filesystem,
    validate_checkpoint,
    write_checkpoint_dir,
)

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..core.base import StreamingClusterer

__all__ = [
    "CHECKPOINT_PREFIX",
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "STATE_NAME",
    "CheckpointError",
    "CheckpointStore",
    "Filesystem",
    "active_filesystem",
    "use_filesystem",
    "validate_checkpoint",
    "list_checkpoints",
    "latest_good_checkpoint",
    "prune_checkpoints",
    "config_fingerprint",
    "checkpoint_fingerprint",
    "fingerprint_for",
    "save_checkpoint",
    "load_checkpoint",
    "read_manifest",
    "registered_classes",
    # re-exports for state-codec implementers
    "pack_state",
    "unpack_state",
    "rng_state",
    "rng_from_state",
    "resolve_class",
    "load_arrays",
    "shard_file_name",
    "write_checkpoint_dir",
]


def fingerprint_for(clusterer: "StreamingClusterer") -> str:
    """The fingerprint a snapshot of ``clusterer`` would carry.

    Useful before resuming: compute the fingerprint of the configuration you
    are about to run and pass it to :func:`load_checkpoint` as
    ``expected_fingerprint`` to fail fast on configuration drift.
    """
    name = type(clusterer).checkpoint_name
    if name is None:
        raise CheckpointError(
            f"{type(clusterer).__name__} does not support checkpointing"
        )
    return config_fingerprint(name, clusterer._config_tree())


def checkpoint_fingerprint(path: str | Path) -> str:
    """Fingerprint stored in the checkpoint at ``path`` (validates the manifest)."""
    return read_manifest(path)["fingerprint"]


def save_checkpoint(
    clusterer: "StreamingClusterer",
    path: str | Path,
    annotations: dict | None = None,
) -> Path:
    """Snapshot a live clusterer into a checkpoint directory at ``path``.

    Parallel engines are quiesced first (every queued insert is applied
    before shard state is captured), so the snapshot is a consistent cut of
    the stream.  Returns the checkpoint directory path.

    ``annotations`` is an optional flat dict of JSON scalars describing the
    *stream* this state summarises (e.g. dataset name, generator seed) —
    things the structure-config fingerprint deliberately does not cover.  It
    is stored in the manifest and can be asserted at load time via
    ``load_checkpoint(..., expected_annotations=...)``.
    """
    name = type(clusterer).checkpoint_name
    if name is None:
        raise CheckpointError(
            f"{type(clusterer).__name__} does not support checkpointing"
        )
    if annotations is not None:
        for key, value in annotations.items():
            if not isinstance(key, str) or not (
                value is None or isinstance(value, (bool, int, float, str))
            ):
                raise CheckpointError(
                    "annotations must map str keys to JSON scalars; "
                    f"got {key!r} -> {type(value).__name__}"
                )
    state_skeleton, state_arrays = pack_state(clusterer._state_tree())
    shard_trees = clusterer._shard_trees()
    shard_skeletons: list[object] | None = None
    shard_arrays: list[dict] | None = None
    if shard_trees is not None:
        shard_skeletons, shard_arrays = [], []
        for tree in shard_trees:
            skeleton, arrays = pack_state(tree)
            shard_skeletons.append(skeleton)
            shard_arrays.append(arrays)
    return write_checkpoint_dir(
        path,
        algorithm=name,
        class_name=type(clusterer).__name__,
        config=clusterer._config_tree(),
        runtime=clusterer._runtime_tree(),
        state_skeleton=state_skeleton,
        state_arrays=state_arrays,
        shard_skeletons=shard_skeletons,
        shard_arrays=shard_arrays,
        annotations=annotations,
    )


def load_checkpoint(
    path: str | Path,
    expected_fingerprint: str | None = None,
    expected_annotations: dict | None = None,
    **overrides,
) -> "StreamingClusterer":
    """Restore a clusterer from a checkpoint directory.

    Parameters
    ----------
    path:
        Checkpoint directory written by :func:`save_checkpoint`.
    expected_fingerprint:
        When given, the checkpoint's structure-config fingerprint must match
        exactly; a mismatch raises :class:`CheckpointError` *before* any
        state is loaded (the resume-safety check — see :func:`fingerprint_for`).
    expected_annotations:
        When given, every key must be present in the checkpoint's stored
        annotations with an equal value — the stream-identity check (dataset
        name, generator seed, ...) complementing the structure fingerprint.
        A checkpoint written without the expected annotation is refused.
    overrides:
        Runtime overrides forwarded to the restoring class.  The sharded
        engine accepts ``backend=`` (restore a process-backend snapshot onto
        serial/thread workers and vice versa).

    Raises
    ------
    CheckpointError
        On missing/truncated/corrupt files, unsupported format versions,
        fingerprint/annotation mismatches, or malformed state — never a
        bare crash.
    """
    target = Path(path)
    manifest = read_manifest(target)
    if expected_fingerprint is not None and manifest["fingerprint"] != expected_fingerprint:
        raise CheckpointError(
            "checkpoint was written with a different structure configuration "
            f"(stored fingerprint {manifest['fingerprint']}, "
            f"expected {expected_fingerprint})"
        )
    if expected_annotations:
        stored = manifest.get("annotations") or {}
        for key, value in expected_annotations.items():
            if key not in stored:
                raise CheckpointError(
                    f"checkpoint carries no {key!r} annotation; it was not "
                    "written for this stream (re-snapshot with annotations "
                    "or resume without the check)"
                )
            if stored[key] != value:
                raise CheckpointError(
                    f"checkpoint was written for a different stream: "
                    f"annotation {key!r} is {stored[key]!r}, expected {value!r}"
                )
    cls = resolve_class(manifest["algorithm"])
    state = unpack_state(manifest["state"], load_arrays(target / STATE_NAME))
    shard_skeletons = manifest.get("shards")
    shards = None
    if shard_skeletons is not None:
        shards = [
            unpack_state(skeleton, load_arrays(target / shard_file_name(index)))
            for index, skeleton in enumerate(shard_skeletons)
        ]
    try:
        return cls._from_checkpoint(manifest, state, shards, **overrides)
    except CheckpointError:
        raise
    except (KeyError, TypeError, ValueError, IndexError, AttributeError) as exc:
        raise CheckpointError(f"checkpoint state is malformed: {exc}") from exc
