"""Registry mapping checkpoint algorithm names to clusterer classes.

Every concrete :class:`~repro.core.base.StreamingClusterer` declares a
``checkpoint_name``; this module is the single place that resolves those
names back to classes at load time.  Imports happen lazily inside
:func:`resolve_class` so the checkpoint package never creates import cycles
with the algorithm modules it serialises.
"""

from __future__ import annotations

from .store import CheckpointError

__all__ = ["registered_classes", "resolve_class"]


def registered_classes() -> dict[str, type]:
    """All checkpointable clusterer classes keyed by their algorithm name."""
    from ..baselines.birch import BirchClusterer
    from ..baselines.clustream import CluStreamClusterer
    from ..baselines.sequential import SequentialKMeans
    from ..baselines.streamkmpp import StreamKMpp
    from ..baselines.streamls import StreamLSClusterer
    from ..core.driver import (
        CachedCoresetTreeClusterer,
        CoresetTreeClusterer,
        RecursiveCachedClusterer,
    )
    from ..core.online_cc import OnlineCCClusterer
    from ..extensions.decay import DecayedCoresetClusterer, SlidingWindowClusterer
    from ..extensions.kmedian import KMedianCachedClusterer
    from ..extensions.soft import SoftClusteringClusterer
    from ..parallel.engine import ShardedEngine

    classes = [
        CoresetTreeClusterer,
        CachedCoresetTreeClusterer,
        RecursiveCachedClusterer,
        OnlineCCClusterer,
        StreamKMpp,
        SequentialKMeans,
        BirchClusterer,
        CluStreamClusterer,
        StreamLSClusterer,
        DecayedCoresetClusterer,
        SlidingWindowClusterer,
        SoftClusteringClusterer,
        KMedianCachedClusterer,
        ShardedEngine,
    ]
    return {cls.checkpoint_name: cls for cls in classes}


def resolve_class(algorithm: str) -> type:
    """Class registered under ``algorithm``, or a clear :class:`CheckpointError`."""
    classes = registered_classes()
    try:
        return classes[algorithm]
    except KeyError:
        raise CheckpointError(
            f"checkpoint algorithm {algorithm!r} is unknown to this build; "
            f"available: {sorted(classes)}"
        ) from None
