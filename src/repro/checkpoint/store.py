"""The on-disk checkpoint container: JSON manifest + npz array payloads.

A checkpoint is a *directory* with a small, inspectable layout::

    <checkpoint>/
        manifest.json       # format version, algorithm, config, fingerprint,
                            # RNG states and all scalar state (human-readable)
        state.npz           # array payload of the coordinator / clusterer
        shard-0000.npz      # sharded engines: one array payload per shard
        shard-0001.npz
        ...

``manifest.json`` is written *last* (via a temp file + atomic rename), so a
crash mid-snapshot can never leave a directory that passes validation: a
checkpoint without a manifest is detected as incomplete and refused with
:class:`CheckpointError`.  Overwrites are staged: the replacement snapshot
is built completely in a temporary sibling directory and swapped in only
once durable, so re-snapshotting to the same path never destroys the
previous good snapshot before the new one exists.

The manifest carries a ``fingerprint`` — a SHA-256 over the canonical JSON of
``{"algorithm", "config"}`` — that (a) detects manifest corruption or
hand-editing on load and (b) lets a resuming process assert that a checkpoint
was produced by the same structure configuration it is about to continue
(``expected_fingerprint``).  Runtime knobs that do not change the maths
(executor backend, queue depths) live in the separate ``runtime`` section and
are deliberately *excluded* from the fingerprint, so a snapshot taken on the
process backend restores onto the thread or serial backend unchanged.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import shutil
import zipfile
import zlib
from pathlib import Path
from typing import Iterator

import numpy as np

__all__ = [
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "STATE_NAME",
    "CHECKPOINT_PREFIX",
    "CheckpointError",
    "Filesystem",
    "active_filesystem",
    "use_filesystem",
    "config_fingerprint",
    "shard_file_name",
    "write_checkpoint_dir",
    "read_manifest",
    "load_arrays",
    "validate_checkpoint",
    "list_checkpoints",
    "checkpoint_position",
    "latest_good_checkpoint",
    "prune_checkpoints",
    "CheckpointStore",
]

#: Version of the on-disk checkpoint layout.  Bump on incompatible changes;
#: loaders refuse manifests written with any other version.
FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"
STATE_NAME = "state.npz"

#: Directory-name prefix used by rotating checkpoint stores (harness, CLI,
#: supervisor): ``ckpt-<points:010d>`` sorts lexically by stream position.
CHECKPOINT_PREFIX = "ckpt-"


class Filesystem:
    """The file operations checkpoint writes go through — an injection seam.

    Production uses this passthrough implementation.  The chaos harness
    (:mod:`repro.resilience.chaos`) swaps in subclasses that raise
    ``OSError`` (disk-full) or damage bytes after writing (corruption), via
    :func:`use_filesystem` — so fault paths are exercised without
    monkeypatching numpy or the OS.
    """

    def savez(self, path: Path, arrays: dict[str, np.ndarray]) -> None:
        """Write one compressed npz payload."""
        np.savez_compressed(path, **arrays)

    def write_text(self, path: Path, text: str) -> None:
        """Write a small text file (the manifest)."""
        Path(path).write_text(text, encoding="utf-8")

    def replace(self, src: Path, dst: Path) -> None:
        """Atomically rename ``src`` over ``dst``."""
        os.replace(src, dst)


_DEFAULT_FILESYSTEM = Filesystem()
_active_fs: Filesystem = _DEFAULT_FILESYSTEM


def active_filesystem() -> Filesystem:
    """The :class:`Filesystem` checkpoint writes currently go through."""
    return _active_fs


@contextlib.contextmanager
def use_filesystem(fs: Filesystem) -> Iterator[Filesystem]:
    """Swap the active :class:`Filesystem` for the duration of a ``with`` block."""
    global _active_fs
    previous = _active_fs
    _active_fs = fs
    try:
        yield fs
    finally:
        _active_fs = previous


class CheckpointError(RuntimeError):
    """A checkpoint could not be written, validated, or loaded.

    Raised for every failure mode of the checkpoint subsystem — missing or
    truncated files, format-version mismatches, fingerprint mismatches, and
    malformed state — so callers have a single exception to handle and a
    corrupt snapshot can never surface as a crash deep inside numpy or json.
    """


def config_fingerprint(algorithm: str, config: dict) -> str:
    """Stable fingerprint of an algorithm name plus its structure config.

    Canonical (sorted-key, compact) JSON hashed with SHA-256.  Two clusterers
    share a fingerprint exactly when a checkpoint of one is a valid resume
    point for the other.
    """
    canonical = json.dumps(
        {"algorithm": algorithm, "config": config},
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )
    return "sha256:" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def shard_file_name(index: int) -> str:
    """File name of shard ``index``'s array payload inside a checkpoint."""
    return f"shard-{index:04d}.npz"


def _write_npz(path: Path, arrays: dict[str, np.ndarray]) -> None:
    try:
        _active_fs.savez(path, arrays)
    except OSError as exc:
        raise CheckpointError(f"cannot write checkpoint payload {path}: {exc}") from exc


def write_checkpoint_dir(
    path: str | Path,
    *,
    algorithm: str,
    class_name: str,
    config: dict,
    runtime: dict,
    state_skeleton: object,
    state_arrays: dict[str, np.ndarray],
    shard_skeletons: list[object] | None = None,
    shard_arrays: list[dict[str, np.ndarray]] | None = None,
    annotations: dict | None = None,
) -> Path:
    """Write one complete checkpoint directory and return its path.

    Crash safety when overwriting: the new snapshot is built *completely* in
    a temporary sibling directory (its own manifest written last), and only
    then swapped into place — so a pre-existing snapshot at ``path`` stays
    intact and loadable until the replacement is fully durable.  A crash
    mid-build leaves the old snapshot untouched plus a ``.tmp-*`` directory
    to garbage-collect; the only way to observe no valid snapshot is a crash
    inside the final pair of renames (microseconds), and even then the old
    one survives under ``<path>.old-<pid>``.
    """
    target = Path(path)
    if target.exists() and not target.is_dir():
        raise CheckpointError(f"checkpoint path {target} exists and is not a directory")
    target.parent.mkdir(parents=True, exist_ok=True)

    staging = target.parent / f"{target.name}.tmp-{os.getpid()}"
    if staging.exists():
        shutil.rmtree(staging)
    staging.mkdir()
    try:
        _write_npz(staging / STATE_NAME, state_arrays)
        shard_skeletons = shard_skeletons or []
        shard_arrays = shard_arrays or []
        for index, arrays in enumerate(shard_arrays):
            _write_npz(staging / shard_file_name(index), arrays)

        manifest = {
            "format_version": FORMAT_VERSION,
            "algorithm": algorithm,
            "class": class_name,
            "fingerprint": config_fingerprint(algorithm, config),
            "config": config,
            "runtime": runtime,
            "state": state_skeleton,
        }
        if shard_skeletons:
            manifest["shards"] = shard_skeletons
        if annotations:
            manifest["annotations"] = dict(annotations)
        tmp_manifest = staging / (MANIFEST_NAME + ".tmp")
        _active_fs.write_text(
            tmp_manifest, json.dumps(manifest, indent=2, sort_keys=True)
        )
        _active_fs.replace(tmp_manifest, staging / MANIFEST_NAME)
        retired = target.parent / f"{target.name}.old-{os.getpid()}"
        if retired.exists():
            shutil.rmtree(retired)
    except CheckpointError:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    except (OSError, TypeError, ValueError) as exc:
        # TypeError/ValueError: unserialisable manifest content (e.g. exotic
        # annotation values) from json.dumps.
        shutil.rmtree(staging, ignore_errors=True)
        raise CheckpointError(f"cannot write checkpoint {target}: {exc}") from exc

    # Swap the finished snapshot into place.  Failures here must never
    # destroy the only complete snapshot: if the final rename fails after
    # the old snapshot was moved aside, roll the old one back and leave the
    # fully-built staging directory on disk for manual recovery.
    try:
        if target.exists():
            os.rename(target, retired)
        try:
            os.rename(staging, target)
        except OSError:
            if retired.exists():
                os.rename(retired, target)
            raise
    except OSError as exc:
        raise CheckpointError(
            f"cannot activate checkpoint {target}: {exc} "
            f"(the complete snapshot was left at {staging})"
        ) from exc
    if retired.exists():
        shutil.rmtree(retired, ignore_errors=True)
    return target


def read_manifest(path: str | Path) -> dict:
    """Read and validate a checkpoint manifest.

    Validates presence, JSON well-formedness, the format version, and that
    the stored fingerprint matches the stored algorithm + config (detecting
    corruption or hand-editing of the manifest).
    """
    target = Path(path)
    manifest_path = target / MANIFEST_NAME
    if not target.is_dir() or not manifest_path.is_file():
        raise CheckpointError(
            f"{target} is not a checkpoint directory (missing {MANIFEST_NAME}; "
            "the snapshot may be incomplete or the path wrong)"
        )
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"cannot parse {manifest_path}: {exc}") from exc
    if not isinstance(manifest, dict):
        raise CheckpointError(f"{manifest_path} does not contain a manifest object")

    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint format version {version!r} is not supported "
            f"(this build reads version {FORMAT_VERSION})"
        )
    for key in ("algorithm", "config", "fingerprint", "state"):
        if key not in manifest:
            raise CheckpointError(f"checkpoint manifest is missing the {key!r} field")
    expected = config_fingerprint(manifest["algorithm"], manifest["config"])
    if manifest["fingerprint"] != expected:
        raise CheckpointError(
            "checkpoint fingerprint does not match its manifest contents "
            "(the manifest was modified or corrupted)"
        )
    return manifest


def load_arrays(path: str | Path) -> dict[str, np.ndarray]:
    """Load one npz array payload, mapping corruption to :class:`CheckpointError`."""
    target = Path(path)
    if not target.is_file():
        raise CheckpointError(f"checkpoint payload {target} is missing")
    try:
        with np.load(target, allow_pickle=False) as payload:
            return {key: payload[key] for key in payload.files}
    except (zipfile.BadZipFile, zlib.error, OSError, ValueError, KeyError, EOFError) as exc:
        raise CheckpointError(
            f"checkpoint payload {target} is truncated or corrupt: {exc}"
        ) from exc


def validate_checkpoint(path: str | Path) -> dict:
    """Fully validate one checkpoint directory and return its manifest.

    Beyond :func:`read_manifest` (presence, version, fingerprint), this
    decompresses every array payload — the zip container's per-entry CRC32
    check runs during decompression, so a payload with even a single flipped
    byte raises :class:`CheckpointError` here rather than producing silently
    wrong coresets after a restore.
    """
    target = Path(path)
    manifest = read_manifest(target)
    load_arrays(target / STATE_NAME)
    for index in range(len(manifest.get("shards") or [])):
        load_arrays(target / shard_file_name(index))
    return manifest


def checkpoint_position(path: str | Path) -> int:
    """Stream position encoded in a rotating-store snapshot's directory name."""
    name = Path(path).name
    if not name.startswith(CHECKPOINT_PREFIX):
        raise CheckpointError(f"{name!r} is not a rotating-store checkpoint name")
    try:
        return int(name[len(CHECKPOINT_PREFIX):])
    except ValueError as exc:
        raise CheckpointError(f"{name!r} carries no stream position") from exc


def list_checkpoints(root: str | Path) -> list[Path]:
    """Rotating-store snapshot directories under ``root``, oldest first.

    Only ``ckpt-*`` directories count; staging/retired leftovers
    (``*.tmp-*`` / ``*.old-*``) from an interrupted write are ignored.
    """
    base = Path(root)
    if not base.is_dir():
        return []
    return sorted(
        entry
        for entry in base.iterdir()
        if entry.is_dir()
        and entry.name.startswith(CHECKPOINT_PREFIX)
        and ".tmp-" not in entry.name
        and ".old-" not in entry.name
    )


def latest_good_checkpoint(
    root: str | Path, *, expected_fingerprint: str | None = None
) -> Path | None:
    """Newest snapshot under ``root`` that passes full validation.

    Walks from newest to oldest, skipping snapshots that fail
    :func:`validate_checkpoint` (truncated payloads, fingerprint-invalid
    manifests) or that carry the wrong structure fingerprint — the automatic
    fallback past a snapshot corrupted by a crash or bad disk.  Returns
    ``None`` when no good snapshot exists.
    """
    for candidate in reversed(list_checkpoints(root)):
        try:
            manifest = validate_checkpoint(candidate)
        except CheckpointError:
            continue
        if (
            expected_fingerprint is not None
            and manifest["fingerprint"] != expected_fingerprint
        ):
            continue
        return candidate
    return None


def prune_checkpoints(root: str | Path, keep_last: int) -> list[Path]:
    """Delete the oldest snapshots under ``root``, retaining ``keep_last``.

    Retention never makes recovery worse: if none of the ``keep_last``
    newest snapshots validates (e.g. the latest write was torn by a crash),
    the newest *good* snapshot among the prune candidates is spared — the
    store never deletes the only restorable state.  Returns the paths that
    were deleted.
    """
    if keep_last < 1:
        raise CheckpointError(f"keep_last must be >= 1, got {keep_last}")
    snapshots = list_checkpoints(root)
    if len(snapshots) <= keep_last:
        return []
    doomed = snapshots[:-keep_last]
    retained = snapshots[-keep_last:]

    def _is_good(path: Path) -> bool:
        try:
            validate_checkpoint(path)
        except CheckpointError:
            return False
        return True

    if not any(_is_good(path) for path in retained):
        for path in reversed(doomed):
            if _is_good(path):
                doomed = [p for p in doomed if p != path]
                break
    deleted: list[Path] = []
    for path in doomed:
        try:
            shutil.rmtree(path)
        except OSError as exc:
            raise CheckpointError(f"cannot prune checkpoint {path}: {exc}") from exc
        deleted.append(path)
    return deleted


class CheckpointStore:
    """A rotating checkpoint directory: ``<root>/ckpt-<points:010d>`` + retention.

    The durability substrate the supervisor and ``repro serve`` build on:
    each :meth:`save` writes a position-named snapshot and prunes beyond
    ``keep_last``; :meth:`latest_good` restores past a corrupt newest
    snapshot automatically.  Plain functions (:func:`latest_good_checkpoint`
    etc.) remain available for one-off use.
    """

    def __init__(self, root: str | Path, *, keep_last: int = 3) -> None:
        if keep_last < 1:
            raise CheckpointError(f"keep_last must be >= 1, got {keep_last}")
        self.root = Path(root)
        self.keep_last = keep_last

    def path_for(self, points_seen: int) -> Path:
        """Directory a snapshot at stream position ``points_seen`` lives in."""
        return self.root / f"{CHECKPOINT_PREFIX}{points_seen:010d}"

    def list(self) -> list[Path]:
        """Snapshots currently on disk, oldest first."""
        return list_checkpoints(self.root)

    def save(
        self,
        clusterer: object,
        points_seen: int,
        annotations: dict | None = None,
    ) -> Path:
        """Snapshot ``clusterer`` at ``points_seen`` and apply retention."""
        from . import save_checkpoint  # deferred: store is imported by the package

        path = save_checkpoint(clusterer, self.path_for(points_seen), annotations)
        prune_checkpoints(self.root, self.keep_last)
        return path

    def latest_good(self, *, expected_fingerprint: str | None = None) -> Path | None:
        """Newest fully-valid snapshot, or ``None`` (see :func:`latest_good_checkpoint`)."""
        return latest_good_checkpoint(
            self.root, expected_fingerprint=expected_fingerprint
        )
