"""State-tree packing: nested Python/numpy state ↔ (JSON tree, array payload).

A clusterer's live state is captured as a *state tree*: nested dicts and
lists whose leaves are JSON scalars (int, float, str, bool, None) or numpy
arrays.  :func:`pack_state` splits such a tree into a JSON-serialisable
skeleton (arrays replaced by ``{"__ndarray__": key}`` placeholders) and a
flat ``{key: array}`` payload destined for one ``.npz`` file;
:func:`unpack_state` reverses the split.

Arrays survive the round trip bit-for-bit (``.npz`` stores raw dtype bytes),
which is what makes the ingest→snapshot→restore→ingest contract exact.

Random-generator state travels as the :class:`numpy.random.BitGenerator`
state dict — plain ints and strings, so it lives in the JSON manifest (the
manifest is the durable record of "where every randomness stream was").
"""

from __future__ import annotations

import numpy as np

from .store import CheckpointError

__all__ = [
    "ARRAY_MARKER",
    "pack_state",
    "unpack_state",
    "rng_state",
    "rng_from_state",
]

#: Placeholder key marking an array leaf in the packed JSON skeleton.
ARRAY_MARKER = "__ndarray__"


def pack_state(tree: object) -> tuple[object, dict[str, np.ndarray]]:
    """Split a state tree into a JSON-able skeleton and an array payload.

    Arrays are assigned sequential keys (``a0``, ``a1``, ...) in traversal
    order; numpy scalars are converted to native Python scalars so the
    skeleton serialises with the stdlib ``json`` module.
    """
    arrays: dict[str, np.ndarray] = {}

    def walk(node: object) -> object:
        if isinstance(node, np.ndarray):
            key = f"a{len(arrays)}"
            arrays[key] = node
            return {ARRAY_MARKER: key}
        if isinstance(node, dict):
            if ARRAY_MARKER in node:
                raise CheckpointError(
                    f"state trees must not use the reserved key {ARRAY_MARKER!r}"
                )
            return {str(k): walk(v) for k, v in node.items()}
        if isinstance(node, (list, tuple)):
            return [walk(v) for v in node]
        if isinstance(node, np.integer):
            return int(node)
        if isinstance(node, np.floating):
            return float(node)
        if isinstance(node, np.bool_):
            return bool(node)
        if node is None or isinstance(node, (bool, int, float, str)):
            return node
        raise CheckpointError(
            f"cannot serialise state leaf of type {type(node).__name__}"
        )

    return walk(tree), arrays


def unpack_state(tree: object, arrays: dict[str, np.ndarray]) -> object:
    """Rebuild a state tree from its JSON skeleton and array payload."""

    def walk(node: object) -> object:
        if isinstance(node, dict):
            if set(node) == {ARRAY_MARKER}:
                key = node[ARRAY_MARKER]
                if key not in arrays:
                    raise CheckpointError(
                        f"array payload is missing key {key!r} referenced by the manifest"
                    )
                return arrays[key]
            return {k: walk(v) for k, v in node.items()}
        if isinstance(node, list):
            return [walk(v) for v in node]
        return node

    return walk(tree)


def rng_state(generator: np.random.Generator) -> dict:
    """JSON-able state of a numpy random generator (bit-generator state dict)."""
    return generator.bit_generator.state


def rng_from_state(state: dict) -> np.random.Generator:
    """Rebuild a numpy random generator from :func:`rng_state` output.

    The single RNG-restore path for every codec: any malformed state dict —
    unknown bit-generator name, missing keys, wrong value shapes — surfaces
    as :class:`CheckpointError`, never a bare numpy/attribute error.
    """
    try:
        name = state["bit_generator"]
        bit_generator = getattr(np.random, name)()
        generator = np.random.Generator(bit_generator)
        generator.bit_generator.state = state
    except (TypeError, KeyError, AttributeError, ValueError, RuntimeError) as exc:
        raise CheckpointError(f"invalid random-generator state: {exc}") from exc
    return generator
