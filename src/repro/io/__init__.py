"""Persistence helpers: centers, query results, CSV/JSON experiment data."""

from .serialization import (
    load_centers,
    load_query_result,
    results_from_csv,
    results_to_csv,
    save_centers,
    save_query_result,
    series_from_json,
    series_to_json,
)

__all__ = [
    "load_centers",
    "load_query_result",
    "results_from_csv",
    "results_to_csv",
    "save_centers",
    "save_query_result",
    "series_from_json",
    "series_to_json",
]
