"""Saving and loading cluster centers and experiment results.

A downstream deployment needs to persist two things: the cluster centers a
query returned (so other services can assign incoming records to clusters
without talking to the streaming process) and the measurements an experiment
produced (so results can be compared across runs).  Both are covered here
with plain ``.npz`` / JSON / CSV files — no extra dependencies.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from ..core.base import QueryResult

__all__ = [
    "save_centers",
    "load_centers",
    "save_query_result",
    "load_query_result",
    "results_to_csv",
    "results_from_csv",
    "series_to_json",
    "series_from_json",
]


def save_centers(
    path: str | Path, centers: np.ndarray, weights: np.ndarray | None = None
) -> Path:
    """Save a center matrix (and optional per-center weights) to an ``.npz`` file.

    The centers' dtype is preserved exactly as given (historically everything
    was silently upcast to float64, corrupting float32 deployments that
    compare serving output bit-for-bit).  ``weights`` — e.g. the cluster
    weights a coreset query carries — are stored alongside when provided and
    must have one entry per center.  Returns the path written.
    """
    target = Path(path)
    arr = np.asarray(centers)
    if arr.ndim != 2:
        raise ValueError(f"centers must be 2-D, got shape {arr.shape}")
    payload: dict[str, np.ndarray] = {"centers": arr}
    if weights is not None:
        w = np.asarray(weights)
        if w.ndim != 1 or w.shape[0] != arr.shape[0]:
            raise ValueError(
                f"weights must have shape ({arr.shape[0]},), got {w.shape}"
            )
        payload["weights"] = w
    target.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(target, **payload)
    return target if target.suffix == ".npz" else target.with_suffix(target.suffix + ".npz")


def load_centers(
    path: str | Path, with_weights: bool = False
) -> np.ndarray | tuple[np.ndarray, np.ndarray | None]:
    """Load a center matrix previously written by :func:`save_centers`.

    Dtype is preserved (no float64 upcast).  With ``with_weights=True`` the
    result is a ``(centers, weights)`` tuple, where ``weights`` is ``None``
    for files written without a weights field.
    """
    with np.load(Path(path)) as payload:
        if "centers" not in payload:
            raise KeyError(f"{path} does not contain a 'centers' array")
        centers = payload["centers"]
        if not with_weights:
            return centers
        weights = payload["weights"] if "weights" in payload else None
        return centers, weights


def save_query_result(path: str | Path, result: QueryResult) -> Path:
    """Save a full :class:`~repro.core.base.QueryResult` (centers + metadata)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        target,
        centers=np.asarray(result.centers, dtype=np.float64),
        coreset_points=np.asarray([result.coreset_points], dtype=np.int64),
        from_cache=np.asarray([int(result.from_cache)], dtype=np.int64),
    )
    return target if target.suffix == ".npz" else target.with_suffix(target.suffix + ".npz")


def load_query_result(path: str | Path) -> QueryResult:
    """Load a :class:`~repro.core.base.QueryResult` written by :func:`save_query_result`."""
    with np.load(Path(path)) as payload:
        return QueryResult(
            centers=np.asarray(payload["centers"], dtype=np.float64),
            coreset_points=int(payload["coreset_points"][0]),
            from_cache=bool(payload["from_cache"][0]),
        )


def results_to_csv(path: str | Path, rows: Sequence[Mapping[str, object]]) -> Path:
    """Write a list of result rows (dicts) to a CSV file.

    The header is the union of all keys, in first-appearance order, so rows
    with heterogeneous keys (e.g. different algorithm columns) are handled.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    with open(target, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow({key: row.get(key, "") for key in columns})
    return target


def results_from_csv(path: str | Path) -> list[dict[str, str]]:
    """Read rows written by :func:`results_to_csv` (values come back as strings)."""
    with open(Path(path), newline="", encoding="utf-8") as handle:
        return [dict(row) for row in csv.DictReader(handle)]


def series_to_json(path: str | Path, series: Mapping[str, Mapping[object, float]]) -> Path:
    """Write a ``{series: {x: y}}`` mapping (a figure's data) to JSON."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    serialisable = {
        str(name): {str(x): float(y) for x, y in mapping.items()}
        for name, mapping in series.items()
    }
    target.write_text(json.dumps(serialisable, indent=2, sort_keys=True), encoding="utf-8")
    return target


def series_from_json(path: str | Path) -> dict[str, dict[str, float]]:
    """Read figure data written by :func:`series_to_json`."""
    return json.loads(Path(path).read_text(encoding="utf-8"))
