"""Preallocated base-bucket buffer for vectorized stream ingestion.

The driver collects arriving points into base buckets of ``m`` points before
handing them to the clustering structure.  The original implementation kept a
``list[np.ndarray]`` of single rows and paid a Python-level ``append`` per
point plus an ``np.vstack`` per bucket; :class:`BucketBuffer` replaces that
with one preallocated ``(m, d)`` array and a fill cursor, so batch ingestion
copies at most the ragged head and tail of an incoming array and *slices* all
interior full buckets directly out of it (zero copy).

:meth:`BucketBuffer.take_full_blocks` is the single primitive every batch
ingestion path (driver, OnlineCC, shards, decay/window extensions, StreamLS)
builds on.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BucketBuffer"]


class BucketBuffer:
    """Fixed-capacity row buffer backing the driver's partial base bucket.

    Parameters
    ----------
    capacity:
        Bucket size ``m``: the number of rows a full buffer holds.
    dimension:
        Dimensionality of the rows.  May be omitted and set lazily on the
        first append/fill (streams reveal their dimension with the first
        point).
    dtype:
        Storage dtype of the rows (float64 default, float32 opt-in); rows
        appended or filled in another dtype are cast on copy.

    Notes
    -----
    The backing array is allocated once and reused across buckets: draining
    the buffer returns a *copy* of the filled region and resets the cursor,
    so callers may retain drained blocks indefinitely.  Blocks produced by
    :meth:`take_full_blocks` that were sliced out of the caller's input array
    are views into that input, not into the buffer.
    """

    def __init__(
        self,
        capacity: int,
        dimension: int | None = None,
        dtype: np.dtype | type | str = np.float64,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = int(capacity)
        self._dtype = np.dtype(dtype)
        self._data: np.ndarray | None = None
        self._size = 0
        if dimension is not None:
            self._allocate(dimension)

    def _allocate(self, dimension: int) -> None:
        if dimension <= 0:
            raise ValueError(f"dimension must be positive, got {dimension}")
        self._data = np.empty((self._capacity, dimension), dtype=self._dtype)

    # -- properties ----------------------------------------------------------

    @property
    def capacity(self) -> int:
        """The bucket size ``m``."""
        return self._capacity

    @property
    def dtype(self) -> np.dtype:
        """Storage dtype of the buffered rows."""
        return self._dtype

    @property
    def dimension(self) -> int | None:
        """Row dimensionality (None until the first row arrives)."""
        return None if self._data is None else int(self._data.shape[1])

    @property
    def size(self) -> int:
        """Number of rows currently buffered."""
        return self._size

    @property
    def remaining(self) -> int:
        """Rows still needed to complete the current bucket."""
        return self._capacity - self._size

    @property
    def is_empty(self) -> bool:
        """True when no rows are buffered."""
        return self._size == 0

    @property
    def is_full(self) -> bool:
        """True when the buffer holds a complete bucket."""
        return self._size >= self._capacity

    def __len__(self) -> int:
        return self._size

    # -- mutation ------------------------------------------------------------

    def append(self, row: np.ndarray) -> None:
        """Append one row (already validated by the caller)."""
        if self._data is None:
            self._allocate(row.shape[0])
        assert self._data is not None
        if self._size >= self._capacity:
            raise ValueError("cannot append to a full BucketBuffer")
        self._data[self._size] = row
        self._size += 1

    def fill(self, arr: np.ndarray, offset: int = 0) -> int:
        """Copy rows from ``arr[offset:]`` until the buffer is full or ``arr`` ends.

        Returns the number of rows consumed from ``arr``.
        """
        if self._data is None:
            self._allocate(arr.shape[1])
        assert self._data is not None
        take = min(self._capacity - self._size, arr.shape[0] - offset)
        if take <= 0:
            return 0
        self._data[self._size : self._size + take] = arr[offset : offset + take]
        self._size += take
        return take

    def drain(self) -> np.ndarray:
        """Return a copy of the filled region and reset the cursor.

        The copy is required because the backing array is reused for the next
        bucket while the drained block lives on inside the structure.
        """
        if self._data is None or self._size == 0:
            raise ValueError("cannot drain an empty BucketBuffer")
        block = self._data[: self._size].copy()
        self._size = 0
        return block

    def snapshot(self) -> np.ndarray:
        """Copy of the filled region without resetting (for query-time unions)."""
        if self._data is None or self._size == 0:
            dim = self.dimension or 1
            return np.empty((0, dim), dtype=self._dtype)
        return self._data[: self._size].copy()

    def clear(self) -> None:
        """Discard all buffered rows."""
        self._size = 0

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        """Checkpoint state: capacity plus the currently buffered rows."""
        return {
            "capacity": self._capacity,
            "rows": None if self._size == 0 else self._data[: self._size].copy(),
        }

    def load_state(self, state: dict) -> None:
        """Restore buffered rows from :meth:`state_dict` output (resets first)."""
        if int(state["capacity"]) != self._capacity:
            raise ValueError(
                f"buffer capacity mismatch: checkpoint has {state['capacity']}, "
                f"this buffer holds {self._capacity}"
            )
        self._size = 0
        rows = state["rows"]
        if rows is not None and rows.shape[0]:
            if self._data is None or self._data.shape[1] != rows.shape[1]:
                self._allocate(rows.shape[1])
            self.fill(rows)

    # -- batch splitting -----------------------------------------------------

    def take_full_blocks(self, arr: np.ndarray) -> list[np.ndarray]:
        """Split a batch into full ``(m, d)`` blocks, keeping the ragged tail.

        The incoming array is consumed entirely: rows first top up the
        partially-filled buffer (head copy); every aligned run of ``m`` rows
        after that is returned as a zero-copy slice of ``arr``; the remaining
        ``< m`` tail rows are copied into the buffer for the next call.

        Returns the completed blocks in arrival order.  The first block may be
        a drained copy (when the buffer was partially filled); all others are
        views into ``arr``.  No per-point Python work is performed — the only
        loop is one iteration per *full bucket*.
        """
        n = arr.shape[0]
        if n == 0:
            return []
        blocks: list[np.ndarray] = []
        pos = 0
        if self._size > 0:
            pos = self.fill(arr)
            if self.is_full:
                blocks.append(self.drain())
            else:
                return blocks  # arr exhausted inside the partial bucket
        m = self._capacity
        num_full = (n - pos) // m
        for i in range(num_full):
            blocks.append(arr[pos + i * m : pos + (i + 1) * m])
        pos += num_full * m
        if pos < n:
            self.fill(arr, offset=pos)
        return blocks
