"""The coreset cache used by CC and RCC.

The cache maps a *right endpoint* ``u`` (a number of base buckets) to a
coreset bucket whose span is ``[1, u]``.  After a query at time ``N`` the
freshly computed coreset for ``[1, N]`` is stored under key ``N``, and every
key that is not in ``prefixsum(N, r) ∪ {N}`` is evicted (Algorithm 3, lines
18–19).  Fact 2 guarantees that, when queries arrive at least once per base
bucket, the key ``major(N, r)`` needed by the next query is always present.
"""

from __future__ import annotations

from ..coreset.bucket import Bucket
from .numeral import prefixsum

__all__ = ["CoresetCache"]


class CoresetCache:
    """Keyed store of prefix coresets with prefixsum-based eviction.

    Parameters
    ----------
    merge_degree:
        The base ``r`` used for the prefixsum eviction rule.
    """

    def __init__(self, merge_degree: int) -> None:
        if merge_degree < 2:
            raise ValueError(f"merge_degree must be >= 2, got {merge_degree}")
        self._merge_degree = merge_degree
        self._entries: dict[int, Bucket] = {}
        self._hits = 0
        self._misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, endpoint: int) -> bool:
        return endpoint in self._entries

    @property
    def merge_degree(self) -> int:
        """The base ``r`` used for eviction decisions."""
        return self._merge_degree

    @property
    def hits(self) -> int:
        """Number of successful lookups (instrumentation for benchmarks)."""
        return self._hits

    @property
    def misses(self) -> int:
        """Number of failed lookups."""
        return self._misses

    def keys(self) -> set[int]:
        """The set of right endpoints currently cached."""
        return set(self._entries)

    def buckets(self) -> list[Bucket]:
        """All cached coresets (does not count as lookups for hit statistics)."""
        return list(self._entries.values())

    def lookup(self, endpoint: int) -> Bucket | None:
        """Return the cached coreset with span ``[1, endpoint]``, if present."""
        bucket = self._entries.get(endpoint)
        if bucket is None:
            self._misses += 1
        else:
            self._hits += 1
        return bucket

    def store(self, bucket: Bucket) -> None:
        """Insert a prefix coreset (its span must start at base bucket 1)."""
        if bucket.start != 1:
            raise ValueError(
                f"cache stores prefix coresets only; got span [{bucket.start},{bucket.end}]"
            )
        self._entries[bucket.end] = bucket

    def evict_stale(self, num_base_buckets: int) -> int:
        """Drop every key outside ``prefixsum(N, r) ∪ {N}``; return how many were dropped."""
        keep = prefixsum(num_base_buckets, self._merge_degree)
        keep.add(num_base_buckets)
        stale = [key for key in self._entries if key not in keep]
        for key in stale:
            del self._entries[key]
        return len(stale)

    def stored_points(self) -> int:
        """Total number of weighted points held by cached coresets."""
        return sum(bucket.size for bucket in self._entries.values())

    def clear(self) -> None:
        """Remove every cached coreset (used when RCC resets inner structures)."""
        self._entries.clear()
