"""The coreset cache used by CC and RCC.

The cache maps a *right endpoint* ``u`` (a number of base buckets) to a
coreset bucket whose span is ``[1, u]``.  After a query at time ``N`` the
freshly computed coreset for ``[1, N]`` is stored under key ``N``, and every
key that is not in ``prefixsum(N, r) ∪ {N}`` is evicted (Algorithm 3, lines
18–19).  Fact 2 guarantees that, when queries arrive at least once per base
bucket, the key ``major(N, r)`` needed by the next query is always present.

RCC reuses the same class at every recursive order: an inner structure keys
its cache by *its own* bucket count rather than by a global prefix endpoint,
so :meth:`CoresetCache.store` accepts an explicit key for that case.  Every
lookup — CC's and RCC's alike — feeds the hit/miss counters that the
query-serving pipeline reports per query.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..coreset.bucket import Bucket
from .numeral import prefixsum

__all__ = ["CacheStats", "CoresetCache"]


@dataclass(frozen=True)
class CacheStats:
    """Cumulative lookup counters of one or more coreset caches.

    Attributes
    ----------
    hits:
        Lookups that found a cached coreset.
    misses:
        Lookups that found nothing (the query had to merge more pieces).
    entries:
        Number of coresets currently cached.
    """

    hits: int = 0
    misses: int = 0
    entries: int = 0

    def merged_with(self, other: "CacheStats") -> "CacheStats":
        """Sum of two counter sets (used by RCC to aggregate its orders)."""
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            entries=self.entries + other.entries,
        )

    @property
    def lookups(self) -> int:
        """Total lookups (hits plus misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when none occurred)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class CoresetCache:
    """Keyed store of prefix coresets with prefixsum-based eviction.

    Parameters
    ----------
    merge_degree:
        The base ``r`` used for the prefixsum eviction rule.
    """

    def __init__(self, merge_degree: int) -> None:
        if merge_degree < 2:
            raise ValueError(f"merge_degree must be >= 2, got {merge_degree}")
        self._merge_degree = merge_degree
        self._entries: dict[int, Bucket] = {}
        self._hits = 0
        self._misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, endpoint: int) -> bool:
        return endpoint in self._entries

    @property
    def merge_degree(self) -> int:
        """The base ``r`` used for eviction decisions."""
        return self._merge_degree

    @property
    def hits(self) -> int:
        """Number of successful lookups (instrumentation for benchmarks)."""
        return self._hits

    @property
    def misses(self) -> int:
        """Number of failed lookups."""
        return self._misses

    def stats(self) -> CacheStats:
        """Snapshot of the lookup counters and current size."""
        return CacheStats(hits=self._hits, misses=self._misses, entries=len(self._entries))

    def keys(self) -> set[int]:
        """The set of right endpoints currently cached."""
        return set(self._entries)

    def buckets(self) -> list[Bucket]:
        """All cached coresets (does not count as lookups for hit statistics)."""
        return list(self._entries.values())

    def lookup(self, endpoint: int) -> Bucket | None:
        """Return the cached coreset stored under ``endpoint``, if present."""
        bucket = self._entries.get(endpoint)
        if bucket is None:
            self._misses += 1
        else:
            self._hits += 1
        return bucket

    def store(self, bucket: Bucket, key: int | None = None) -> None:
        """Insert a coreset under ``key`` (default: the bucket's right endpoint).

        Without an explicit ``key`` the bucket must be a *prefix* coreset
        (span starting at base bucket 1), which is the CC invariant.  RCC's
        inner structures pass their own bucket count as ``key`` because their
        buckets carry global spans.
        """
        if key is None:
            if bucket.start != 1:
                raise ValueError(
                    f"cache stores prefix coresets only; got span "
                    f"[{bucket.start},{bucket.end}]"
                )
            key = bucket.end
        self._entries[key] = bucket

    def evict_stale(self, num_base_buckets: int) -> int:
        """Drop every key outside ``prefixsum(N, r) ∪ {N}``; return how many were dropped."""
        keep = prefixsum(num_base_buckets, self._merge_degree)
        keep.add(num_base_buckets)
        stale = [key for key in self._entries if key not in keep]
        for key in stale:
            del self._entries[key]
        return len(stale)

    def stored_points(self) -> int:
        """Total number of weighted points held by cached coresets."""
        return sum(bucket.size for bucket in self._entries.values())

    def clear(self) -> None:
        """Remove every cached coreset (used when RCC resets inner structures)."""
        self._entries.clear()

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        """Checkpoint state: every cached coreset (with its key) plus counters."""
        return {
            "merge_degree": self._merge_degree,
            "hits": self._hits,
            "misses": self._misses,
            "entries": [
                {"key": key, "bucket": bucket.state_dict()}
                for key, bucket in self._entries.items()
            ],
        }

    def load_state(self, state: dict) -> None:
        """Restore cache contents and counters from :meth:`state_dict` output."""
        self._merge_degree = int(state["merge_degree"])
        self._hits = int(state["hits"])
        self._misses = int(state["misses"])
        self._entries = {
            int(entry["key"]): Bucket.from_state(entry["bucket"])
            for entry in state["entries"]
        }
