"""RCC — the recursive coreset cache (Algorithms 4, 5, and 6).

RCC applies the coreset-caching idea recursively.  An order-``i`` structure
``RCC(i)`` uses merge degree ``r_i = 2^(2^i)`` and keeps, per level, both a
plain list of buckets (like a coreset tree level) and an inner ``RCC(i - 1)``
structure holding the same buckets but organised for fast retrieval.  At query
time only two coresets are merged per order — one from the cache and one from
the inner structure covering the newest buckets — so the number of coresets
merged is ``2 * nesting_depth = O(log log N)`` while the level (and hence the
approximation error) of the returned coreset stays ``O(1)``.

With nesting depth ``iota = 3`` the merge degrees of the successive orders are
256, 16, 4, and 2, matching the paper's ``N^{1/2}, N^{1/4}, N^{1/8}``
configuration for streams of around ``2^16`` base buckets.
"""

from __future__ import annotations

from ..coreset.bucket import Bucket, WeightedPointSet
from ..coreset.construction import CoresetConstructor
from ..coreset.merge import merge_buckets, union_buckets
from .base import ClusteringStructure, validate_base_buckets
from .cache import CacheStats, CoresetCache
from .numeral import major

__all__ = ["RecursiveCachedTree", "merge_degree_for_order"]


def merge_degree_for_order(order: int) -> int:
    """The merge degree ``r_i = 2^(2^i)`` used by an order-``i`` RCC structure."""
    if order < 0:
        raise ValueError(f"order must be non-negative, got {order}")
    return 2 ** (2**order)


class _RccNode:
    """One order of the recursive structure (``R`` in Algorithms 4–6)."""

    def __init__(self, order: int, constructor: CoresetConstructor) -> None:
        self.order = order
        self.merge_degree = merge_degree_for_order(order)
        self._constructor = constructor
        self._levels: list[list[Bucket]] = []
        self._children: list["_RccNode | None"] = []
        # The same keyed cache CC uses, with this node's bucket count as the
        # key space (inner buckets carry global spans, so keys are explicit).
        self._cache = CoresetCache(self.merge_degree)
        self.num_buckets = 0

    # -- update path -------------------------------------------------------

    def insert(self, bucket: Bucket) -> None:
        """RCC-Update: append at level 0, recurse, and propagate merges."""
        self.num_buckets += 1
        self._append(0, bucket)
        if self.order > 0:
            self._child(0).insert(bucket)

        level = 0
        while len(self._levels[level]) >= self.merge_degree:
            merged = merge_buckets(self._levels[level], self._constructor)
            self._append(level + 1, merged)
            if self.order > 0:
                self._child(level + 1).insert(merged)
            self._levels[level] = []
            if self.order > 0:
                self._children[level] = _RccNode(self.order - 1, self._constructor)
            level += 1

    def insert_buckets(self, buckets: list[Bucket]) -> None:
        """Batch RCC-Update: settle each level in one amortized pass.

        Matches the sequential semantics exactly: a level that merged during
        the batch leaves behind only its post-merge suffix, so its inner
        structure is rebuilt from that suffix (in the sequential flow the
        inner structure is reset at the last merge and then receives exactly
        those buckets).  Span-keyed merge randomness makes the resulting
        buckets bit-identical to one-at-a-time insertion.
        """
        if not buckets:
            return
        self.num_buckets += len(buckets)
        self._ensure_level(0)
        self._levels[0].extend(buckets)
        if self.order > 0:
            self._child(0).insert_buckets(buckets)

        level = 0
        while level < len(self._levels):
            pending = self._levels[level]
            carried: list[Bucket] = []
            while len(pending) >= self.merge_degree:
                group = pending[: self.merge_degree]
                pending = pending[self.merge_degree :]
                carried.append(merge_buckets(group, self._constructor))
            if carried:
                self._levels[level] = pending
                if self.order > 0:
                    self._children[level] = _RccNode(self.order - 1, self._constructor)
                    if pending:
                        self._children[level].insert_buckets(pending)
                self._ensure_level(level + 1)
                self._levels[level + 1].extend(carried)
                if self.order > 0:
                    self._child(level + 1).insert_buckets(carried)
            level += 1

    # -- query path ---------------------------------------------------------

    def query(self) -> Bucket | None:
        """RCC-Coreset: return a coreset bucket covering everything inserted."""
        if self.num_buckets == 0:
            return None

        n1 = major(self.num_buckets, self.merge_degree)
        cached_prefix = self._cache.lookup(n1) if n1 > 0 else None

        if cached_prefix is None:
            pieces = self._full_union_pieces()
        else:
            newest = self._newest_piece()
            pieces = [cached_prefix] + ([newest] if newest is not None else [])

        combined = union_buckets(pieces)
        summary = self._constructor.build(combined.data)
        result = Bucket(
            data=summary,
            start=combined.start,
            end=combined.end,
            level=combined.level + 1,
        )
        self._cache.store(result, key=self.num_buckets)
        self._cache.evict_stale(self.num_buckets)
        return result

    def _full_union_pieces(self) -> list[Bucket]:
        """Fallback: coresets covering every level (cache could not help)."""
        pieces: list[Bucket] = []
        for level, buckets in enumerate(self._levels):
            if not buckets:
                continue
            if self.order > 0:
                child = self._children[level]
                piece = child.query() if child is not None else None
                if piece is not None:
                    pieces.append(piece)
                else:
                    pieces.extend(buckets)
            else:
                pieces.extend(buckets)
        return pieces

    def _newest_piece(self) -> Bucket | None:
        """Coreset of the buckets at the lowest non-empty level."""
        for level, buckets in enumerate(self._levels):
            if not buckets:
                continue
            if self.order > 0:
                child = self._children[level]
                if child is not None and child.num_buckets == len(buckets):
                    piece = child.query()
                    if piece is not None:
                        return piece
            if len(buckets) == 1:
                return buckets[0]
            return union_buckets(buckets)
        return None

    # -- accounting ----------------------------------------------------------

    def stored_points(self) -> int:
        """Points held by this node's levels and cache plus all inner structures."""
        total = sum(b.size for level in self._levels for b in level)
        total += self._cache.stored_points()
        if self.order > 0:
            total += sum(
                child.stored_points() for child in self._children if child is not None
            )
        return total

    def max_level(self) -> int:
        """Highest coreset level stored anywhere under this node."""
        highest = 0
        for buckets in self._levels:
            for bucket in buckets:
                highest = max(highest, bucket.level)
        for bucket in self._cache.buckets():
            highest = max(highest, bucket.level)
        if self.order > 0:
            for child in self._children:
                if child is not None:
                    highest = max(highest, child.max_level())
        return highest

    def cache_stats(self) -> CacheStats:
        """Lookup counters aggregated over this node and every inner structure."""
        stats = self._cache.stats()
        if self.order > 0:
            for child in self._children:
                if child is not None:
                    stats = stats.merged_with(child.cache_stats())
        return stats

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        """Checkpoint state of this node and, recursively, its inner structures."""
        return {
            "order": self.order,
            "num_buckets": self.num_buckets,
            "cache": self._cache.state_dict(),
            "levels": [
                [bucket.state_dict() for bucket in level] for level in self._levels
            ],
            "children": [
                child.state_dict() if child is not None else None
                for child in self._children
            ],
        }

    @classmethod
    def from_state(cls, state: dict, constructor: CoresetConstructor) -> "_RccNode":
        """Rebuild a node tree from :meth:`state_dict` output (shared constructor)."""
        node = cls(int(state["order"]), constructor)
        node.num_buckets = int(state["num_buckets"])
        node._cache.load_state(state["cache"])
        node._levels = [
            [Bucket.from_state(entry) for entry in level] for level in state["levels"]
        ]
        node._children = [
            cls.from_state(child, constructor) if child is not None else None
            for child in state["children"]
        ]
        return node

    # -- internals -----------------------------------------------------------

    def _ensure_level(self, level: int) -> None:
        while len(self._levels) <= level:
            self._levels.append([])
            self._children.append(
                _RccNode(self.order - 1, self._constructor) if self.order > 0 else None
            )

    def _append(self, level: int, bucket: Bucket) -> None:
        self._ensure_level(level)
        self._levels[level].append(bucket)

    def _child(self, level: int) -> "_RccNode":
        self._ensure_level(level)
        child = self._children[level]
        assert child is not None
        return child


class RecursiveCachedTree(ClusteringStructure):
    """The RCC clustering structure (user-facing wrapper over :class:`_RccNode`).

    Parameters
    ----------
    constructor:
        Coreset constructor shared by every merge at every order.
    nesting_depth:
        The order ``iota`` of the outermost structure.  The paper's
        experiments use 3.
    """

    def __init__(self, constructor: CoresetConstructor, nesting_depth: int = 3) -> None:
        if nesting_depth < 0:
            raise ValueError(f"nesting_depth must be non-negative, got {nesting_depth}")
        self._constructor = constructor
        self._nesting_depth = nesting_depth
        self._root = _RccNode(nesting_depth, constructor)
        self._num_base_buckets = 0

    @property
    def nesting_depth(self) -> int:
        """The order ``iota`` of the outermost RCC structure."""
        return self._nesting_depth

    @property
    def merge_degree(self) -> int:
        """Merge degree of the outermost structure (``2^(2^iota)``)."""
        return self._root.merge_degree

    @property
    def constructor(self) -> CoresetConstructor:
        """The shared coreset constructor (for checkpointing)."""
        return self._constructor

    @property
    def num_base_buckets(self) -> int:
        """Number of base buckets inserted so far."""
        return self._num_base_buckets

    def insert_bucket(self, bucket: Bucket) -> None:
        """Insert one base bucket into the recursive structure."""
        if bucket.level != 0:
            raise ValueError("RecursiveCachedTree.insert_bucket expects a base bucket")
        expected = self._num_base_buckets + 1
        if bucket.start != expected or bucket.end != expected:
            raise ValueError(
                f"expected base bucket with span [{expected},{expected}], "
                f"got [{bucket.start},{bucket.end}]"
            )
        self._num_base_buckets += 1
        self._root.insert(bucket)

    def insert_buckets(self, buckets: list[Bucket]) -> None:
        """Insert several consecutive base buckets in one amortized pass."""
        if not buckets:
            return
        validate_base_buckets(buckets, self._num_base_buckets + 1, "RecursiveCachedTree")
        self._num_base_buckets += len(buckets)
        self._root.insert_buckets(buckets)

    def query_coreset(self) -> WeightedPointSet:
        """Return a coreset of everything inserted so far, updating the caches."""
        bucket = self.query_coreset_bucket()
        if bucket is None:
            return WeightedPointSet.empty(1)
        return bucket.data

    def query_coreset_bucket(self) -> Bucket | None:
        """Bucket-level variant of :meth:`query_coreset` (keeps span and level)."""
        return self._root.query()

    def cache_stats(self) -> CacheStats:
        """Cache lookup counters aggregated across every recursive order.

        Counters of inner structures that have since been reset (their level
        merged away) are not included; the root order's cache — which serves
        the top-level ``major(N)`` lookups — is never reset, so the aggregate
        remains a faithful picture of query-time cache behavior.
        """
        return self._root.cache_stats()

    def stored_points(self) -> int:
        """Points stored across all levels, caches, and inner structures."""
        return self._root.stored_points()

    def max_level(self) -> int:
        """Maximum coreset level currently stored anywhere in the structure."""
        return self._root.max_level()

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        """Checkpoint state: the recursive node tree plus the bucket count."""
        return {
            "nesting_depth": self._nesting_depth,
            "num_base_buckets": self._num_base_buckets,
            "root": self._root.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        """Restore from :meth:`state_dict` output (constructor kept)."""
        self._nesting_depth = int(state["nesting_depth"])
        self._num_base_buckets = int(state["num_base_buckets"])
        self._root = _RccNode.from_state(state["root"], self._constructor)
