"""Sliding-window and time-decayed clustering structures.

Both structures implement the :class:`~repro.core.base.ClusteringStructure`
contract, so the generic :class:`~repro.core.driver.StreamClusterDriver`
drives them exactly like CT/CC/RCC: batch ingestion slices base buckets of
``m`` points, queries assemble a coreset through the shared serving pipeline
(warm-start :class:`~repro.queries.serving.QueryEngine`, multi-k sweeps,
cache-stat accounting), and checkpointing rides the driver's state tree.

* :class:`SlidingWindowStructure` keeps the ``window_buckets`` most recent
  base buckets, each summarised independently (Braverman et al.'s
  sliding-window coreset framework, arXiv:1504.05553, in the exact-expiry
  regime): because buckets are never merged across their boundaries, a bucket
  that leaves the window is dropped *exactly* — no residue of expired points
  survives in any retained summary.  Memory is ``O(window_buckets * m)``.
  Per-bucket summaries are built through the constructor's span-keyed path;
  since a base bucket holds exactly ``m = coreset_size`` points the
  construction is a verbatim passthrough that consumes no randomness, which
  makes the post-expiry coreset *bit-equal* to a fresh run over the
  surviving suffix of the stream (the property test in
  ``tests/property/test_window_soft_properties.py`` pins this down).

* :class:`DecayedBucketStructure` ages every retained bucket's weight
  multiplier by ``decay`` each time a new base bucket completes, and drops
  buckets whose multiplier falls below ``min_weight`` — an exponential
  forgetting horizon of roughly ``m / (1 - decay)`` points with memory
  bounded at ``O(m * log(min_weight) / log(decay))``.

Neither structure supports sharded ingestion: expiry and aging are ordered by
the *global* base-bucket index, and shard routing does not preserve that
order (each shard's buckets fill at ``1/S`` of the stream rate, so per-shard
windows cover different time spans than the global window).  The clusterers
built on these structures refuse sharding with a clear error instead of
silently changing semantics; see ``docs/scenarios.md``.
"""

from __future__ import annotations

from collections import deque

from ..coreset.bucket import Bucket, WeightedPointSet
from ..coreset.construction import CoresetConstructor
from .base import ClusteringStructure, validate_base_buckets

__all__ = ["SlidingWindowStructure", "DecayedBucketStructure"]


class SlidingWindowStructure(ClusteringStructure):
    """Exact-expiry sliding window over per-bucket coreset summaries.

    Parameters
    ----------
    constructor:
        The span-keyed coreset constructor shared with the driver (its
        sketcher, if any, projects buckets at ingest).
    window_buckets:
        Number of most-recent base buckets that participate in queries.
    """

    def __init__(self, constructor: CoresetConstructor, window_buckets: int) -> None:
        if window_buckets <= 0:
            raise ValueError("window_buckets must be positive")
        self.constructor = constructor
        self.window_buckets = int(window_buckets)
        # Each entry: (global base-bucket index, per-bucket summary).
        self._entries: deque[tuple[int, WeightedPointSet]] = deque()
        self._num_inserted = 0
        self._dimension: int | None = None

    @property
    def num_base_buckets(self) -> int:
        """Total base buckets ever inserted (monotonic; expiry never rewinds it)."""
        return self._num_inserted

    @property
    def retained_buckets(self) -> int:
        """Number of unexpired buckets currently inside the window."""
        return len(self._entries)

    @property
    def window_span(self) -> tuple[int, int] | None:
        """Inclusive ``(first, last)`` base-bucket indices inside the window."""
        if not self._entries:
            return None
        return (self._entries[0][0], self._entries[-1][0])

    def summaries(self) -> list[WeightedPointSet]:
        """The retained per-bucket summaries, oldest first."""
        return [summary for _, summary in self._entries]

    def insert_bucket(self, bucket: Bucket) -> None:
        """Insert one base bucket, then expire everything that left the window."""
        self.insert_buckets([bucket])

    def insert_buckets(self, buckets: list[Bucket]) -> None:
        """Insert consecutive base buckets with a single expiry pass at the end."""
        if not buckets:
            return
        validate_base_buckets(buckets, self._num_inserted + 1, type(self).__name__)
        self._dimension = buckets[0].data.dimension
        for bucket in buckets:
            self._num_inserted += 1
            # A base bucket holds exactly m points, so the span-keyed build is
            # a verbatim passthrough (no sampling, no RNG) — kept on the
            # constructor path so a future sub-m summary size keeps working.
            summary = self.constructor.build_for_span(
                bucket.data, level=0, start=bucket.start, end=bucket.end
            )
            self._entries.append((bucket.start, summary))
        self._expire()

    def _expire(self) -> None:
        horizon = self._num_inserted - self.window_buckets
        while self._entries and self._entries[0][0] <= horizon:
            self._entries.popleft()

    def query_coreset(self) -> WeightedPointSet:
        """Union of every unexpired bucket summary, oldest first."""
        if not self._entries:
            return WeightedPointSet.empty(self._dimension or 1)
        return WeightedPointSet.union_all([summary for _, summary in self._entries])

    def stored_points(self) -> int:
        """Summary points currently retained inside the window."""
        return sum(summary.size for _, summary in self._entries)

    def max_level(self) -> int:
        """Always 0: window buckets are never merged across boundaries."""
        return 0

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        """Checkpoint state: insertion counter plus the retained summaries."""
        return {
            "num_inserted": self._num_inserted,
            "dimension": self._dimension,
            "entries": [
                {"index": index, "summary": summary.state_dict()}
                for index, summary in self._entries
            ],
        }

    def load_state(self, state: dict) -> None:
        """Restore from :meth:`state_dict` output."""
        self._num_inserted = int(state["num_inserted"])
        self._dimension = None if state["dimension"] is None else int(state["dimension"])
        self._entries = deque(
            (int(entry["index"]), WeightedPointSet.from_state(entry["summary"]))
            for entry in state["entries"]
        )


class DecayedBucketStructure(ClusteringStructure):
    """Exponentially time-decayed weights over per-bucket coreset summaries.

    Parameters
    ----------
    constructor:
        The span-keyed coreset constructor shared with the driver.
    decay:
        Per-bucket decay factor ``gamma`` in (0, 1]; ``1.0`` disables decay.
    min_weight:
        Buckets whose accumulated multiplier falls below this threshold are
        dropped entirely, bounding memory.
    """

    def __init__(
        self, constructor: CoresetConstructor, decay: float, min_weight: float
    ) -> None:
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        if not 0.0 < min_weight < 1.0:
            raise ValueError("min_weight must be in (0, 1)")
        self.constructor = constructor
        self.decay = float(decay)
        self.min_weight = float(min_weight)
        # Each entry: (summary, current decay multiplier).
        self._entries: deque[tuple[WeightedPointSet, float]] = deque()
        self._num_inserted = 0
        self._dimension: int | None = None

    @property
    def num_base_buckets(self) -> int:
        """Total base buckets ever inserted."""
        return self._num_inserted

    @property
    def retained_buckets(self) -> int:
        """Number of summaries whose decayed weight still exceeds ``min_weight``."""
        return len(self._entries)

    def summaries(self) -> list[tuple[WeightedPointSet, float]]:
        """The retained ``(summary, multiplier)`` pairs, oldest first."""
        return list(self._entries)

    def insert_bucket(self, bucket: Bucket) -> None:
        """Insert one base bucket, aging all existing summaries by one step."""
        self.insert_buckets([bucket])

    def insert_buckets(self, buckets: list[Bucket]) -> None:
        """Insert consecutive base buckets; each one ages every prior summary."""
        if not buckets:
            return
        validate_base_buckets(buckets, self._num_inserted + 1, type(self).__name__)
        self._dimension = buckets[0].data.dimension
        for bucket in buckets:
            self._num_inserted += 1
            aged: deque[tuple[WeightedPointSet, float]] = deque()
            for summary, multiplier in self._entries:
                new_multiplier = multiplier * self.decay
                if new_multiplier >= self.min_weight:
                    aged.append((summary, new_multiplier))
            summary = self.constructor.build_for_span(
                bucket.data, level=0, start=bucket.start, end=bucket.end
            )
            aged.append((summary, 1.0))
            self._entries = aged

    def query_coreset(self) -> WeightedPointSet:
        """Union of the retained summaries with decay-scaled weights."""
        if not self._entries:
            return WeightedPointSet.empty(self._dimension or 1)
        return WeightedPointSet.union_all(
            [
                WeightedPointSet(
                    points=summary.points,
                    weights=summary.weights * multiplier,
                    sketch=summary.sketch,
                )
                for summary, multiplier in self._entries
            ]
        )

    def stored_points(self) -> int:
        """Summary points currently retained."""
        return sum(summary.size for summary, _ in self._entries)

    def max_level(self) -> int:
        """Always 0: decayed buckets are never merged."""
        return 0

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        """Checkpoint state: insertion counter plus retained (summary, weight)."""
        return {
            "num_inserted": self._num_inserted,
            "dimension": self._dimension,
            "entries": [
                {"summary": summary.state_dict(), "multiplier": multiplier}
                for summary, multiplier in self._entries
            ],
        }

    def load_state(self, state: dict) -> None:
        """Restore from :meth:`state_dict` output."""
        self._num_inserted = int(state["num_inserted"])
        self._dimension = None if state["dimension"] is None else int(state["dimension"])
        self._entries = deque(
            (WeightedPointSet.from_state(entry["summary"]), float(entry["multiplier"]))
            for entry in state["entries"]
        )
