"""Core streaming clustering algorithms: CT, CC, RCC, and OnlineCC."""

from .base import ClusteringStructure, QueryResult, StreamingClusterer, StreamingConfig
from .buffer import BucketBuffer
from .cache import CacheStats, CoresetCache
from .cached_tree import CachedCoresetTree
from .coreset_tree import CoresetTree
from .driver import (
    CachedCoresetTreeClusterer,
    CoresetTreeClusterer,
    RecursiveCachedClusterer,
    StreamClusterDriver,
)
from .numeral import digits, major, minor, num_nonzero_digits, prefixsum
from .online_cc import OnlineCCClusterer
from .recursive_cache import RecursiveCachedTree, merge_degree_for_order
from .registry import (
    AlgorithmOptions,
    AlgorithmRegistry,
    AlgorithmSpec,
    DecayOptions,
    NoOptions,
    OnlineCCOptions,
    RccOptions,
    SoftOptions,
    WindowOptions,
    default_registry,
)
from .windowed import DecayedBucketStructure, SlidingWindowStructure

__all__ = [
    "ClusteringStructure",
    "QueryResult",
    "StreamingClusterer",
    "StreamingConfig",
    "BucketBuffer",
    "CacheStats",
    "CoresetCache",
    "CachedCoresetTree",
    "CoresetTree",
    "CachedCoresetTreeClusterer",
    "CoresetTreeClusterer",
    "RecursiveCachedClusterer",
    "StreamClusterDriver",
    "digits",
    "major",
    "minor",
    "num_nonzero_digits",
    "prefixsum",
    "OnlineCCClusterer",
    "RecursiveCachedTree",
    "merge_degree_for_order",
    "AlgorithmOptions",
    "AlgorithmRegistry",
    "AlgorithmSpec",
    "DecayOptions",
    "NoOptions",
    "OnlineCCOptions",
    "RccOptions",
    "SoftOptions",
    "WindowOptions",
    "default_registry",
    "DecayedBucketStructure",
    "SlidingWindowStructure",
]
