"""Base-r numeral decompositions used by the coreset cache.

The CC algorithm keys its cache by the *right endpoints* of coreset spans and
decides what to keep and what to merge using the representation of the number
of base buckets ``N`` in base ``r`` (Section 4.1):

* ``digits(N, r)`` — the non-zero terms ``beta_i * r^alpha_i`` of ``N``.
* ``minor(N, r)`` — the smallest non-zero term.
* ``major(N, r)`` — ``N - minor(N, r)``.
* ``prefixsum(N, r)`` — the partial sums obtained by dropping the 1, 2, ...
  smallest non-zero terms; these are exactly the cache keys worth retaining.

Example from the paper: ``N = 47``, ``r = 3`` gives ``47 = 1*27 + 2*9 + 2*1``,
so ``minor = 2``, ``major = 45``, ``prefixsum = {27, 45}``.
"""

from __future__ import annotations

__all__ = ["digits", "minor", "major", "prefixsum", "num_nonzero_digits"]


def _validate(n: int, r: int) -> None:
    if r < 2:
        raise ValueError(f"base r must be at least 2, got {r}")
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")


def digits(n: int, r: int) -> list[tuple[int, int]]:
    """Non-zero digits of ``n`` in base ``r`` as ``(beta, alpha)`` pairs.

    The pairs are ordered from the least significant digit to the most
    significant, so ``n == sum(beta * r**alpha for beta, alpha in digits(n, r))``.
    """
    _validate(n, r)
    result: list[tuple[int, int]] = []
    alpha = 0
    remaining = n
    while remaining > 0:
        beta = remaining % r
        if beta:
            result.append((beta, alpha))
        remaining //= r
        alpha += 1
    return result


def num_nonzero_digits(n: int, r: int) -> int:
    """Number of non-zero digits of ``n`` in base ``r`` (chi(N) in Lemma 5)."""
    return len(digits(n, r))


def minor(n: int, r: int) -> int:
    """The smallest non-zero term ``beta_0 * r^alpha_0`` of ``n`` in base ``r``.

    Returns 0 when ``n`` is 0.
    """
    terms = digits(n, r)
    if not terms:
        return 0
    beta, alpha = terms[0]
    return beta * r**alpha


def major(n: int, r: int) -> int:
    """``n`` minus its smallest non-zero term; 0 when ``n`` has a single term."""
    return n - minor(n, r)


def prefixsum(n: int, r: int) -> set[int]:
    """Partial sums of ``n``'s base-r expansion, dropping 1, 2, ... smallest terms.

    Formally, writing ``n = sum_{i=0}^{j} beta_i r^{alpha_i}`` with
    ``alpha_0 < alpha_1 < ... < alpha_j``, the set contains
    ``n_kappa = sum_{i=kappa}^{j} beta_i r^{alpha_i}`` for ``kappa = 1 .. j``.
    The set is empty when ``n`` has at most one non-zero digit.
    """
    terms = digits(n, r)
    result: set[int] = set()
    remaining = n
    # Drop terms from the least significant upward; each drop produces one
    # prefix sum, except that dropping the last term would produce 0.
    for beta, alpha in terms[:-1]:
        remaining -= beta * r**alpha
        result.add(remaining)
    return result
