"""The stream-clustering driver (Algorithm 1) and the CT/CC/RCC clusterers.

The driver buffers arriving points into base buckets of ``m`` points.  When a
bucket fills it is handed to the clustering structure ``D``; at query time the
structure's coreset is unioned with the partially-filled bucket and the
query-serving engine (:class:`~repro.queries.serving.QueryEngine`) extracts
``k`` centers — warm-starting Lloyd from the previous query's centers when
the drift guard allows, running the full k-means++ restarts otherwise.

The ingestion pipeline is batch-first: :meth:`StreamClusterDriver.insert_batch`
slices full base buckets directly out of the incoming array (zero copy, no
per-point Python work) and hands them to the structure in one amortized
``insert_buckets`` call; :meth:`StreamClusterDriver.insert` is a thin
per-point wrapper over the same preallocated bucket buffer.  The query
pipeline is the mirror image: one coreset assembly per query (or per multi-k
sweep via :meth:`StreamClusterDriver.query_multi_k`), one warm Lloyd descent
in steady state, and per-query timing plus cache hit/miss counters recorded
in :class:`~repro.queries.serving.QueryStats`.

:class:`StreamClusterDriver` is generic over any
:class:`~repro.core.base.ClusteringStructure`; the concrete classes
:class:`CoresetTreeClusterer` (CT), :class:`CachedCoresetTreeClusterer` (CC),
and :class:`RecursiveCachedClusterer` (RCC) simply plug in the right structure.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..coreset.bucket import Bucket, WeightedPointSet, make_base_buckets
from ..kernels.sketch import sketch_for
from ..queries.serving import QueryStats
from .base import (
    ClusteringStructure,
    QueryResult,
    StreamingClusterer,
    StreamingConfig,
    coerce_batch,
    require_dimension,
    streaming_config_from_dict,
    streaming_config_to_dict,
)
from .buffer import BucketBuffer
from .cached_tree import CachedCoresetTree
from .coreset_tree import CoresetTree
from .recursive_cache import RecursiveCachedTree
from .serving_mixin import CoresetServingMixin

__all__ = [
    "StreamClusterDriver",
    "CoresetTreeClusterer",
    "CachedCoresetTreeClusterer",
    "RecursiveCachedClusterer",
]


class StreamClusterDriver(CoresetServingMixin, StreamingClusterer):
    """Generic driver that batches points and delegates to a clustering structure.

    Parameters
    ----------
    config:
        Shared streaming configuration (``k``, bucket size, query-time
        k-means++ settings, seed).
    structure:
        The clustering data structure ``D`` (CT, CC, or RCC).
    """

    #: Registry name of the per-shard structure used by :meth:`sharded`
    #: (subclasses override; see :data:`repro.parallel.shard.SHARD_STRUCTURES`).
    shard_structure: str | None = None

    def __init__(self, config: StreamingConfig, structure: ClusteringStructure) -> None:
        self.config = config
        self._structure = structure
        self._bucket_size = config.bucket_size
        self._dtype = config.np_dtype
        self._buffer = BucketBuffer(config.bucket_size, dtype=self._dtype)
        self._points_seen = 0
        self._dimension: int | None = None
        self._rng = np.random.default_rng(config.seed)
        self._engine = config.make_query_engine()
        self._last_query_stats: QueryStats | None = None
        # The structure's constructor owns the sketcher (its entropy keys the
        # projection); the driver just projects each completed bucket with it.
        self._sketcher = getattr(structure.constructor, "sketcher", None)

    @classmethod
    def sharded(
        cls,
        config: StreamingConfig,
        num_shards: int,
        backend: str = "serial",
        routing: str = "round_robin",
        **kwargs,
    ):
        """Build a parallel sharded engine running this clusterer's structure.

        The shards=-aware constructor path: instead of one structure fed by
        one buffer, ``num_shards`` independent copies of this clusterer's
        structure each consume a routed slice of the stream (on the chosen
        executor backend) and queries merge one coreset per shard through
        the same serving pipeline.  Returns a
        :class:`~repro.parallel.engine.ShardedEngine`, which speaks the full
        :class:`~repro.core.base.StreamingClusterer` contract.
        """
        if cls.shard_structure is None:
            raise TypeError(
                f"{cls.__name__} does not define a shard structure; "
                "use CoresetTreeClusterer, CachedCoresetTreeClusterer, or "
                "RecursiveCachedClusterer"
            )
        from ..parallel.engine import ShardedEngine

        return ShardedEngine(
            config,
            num_shards=num_shards,
            backend=backend,
            routing=routing,
            structure=cls.shard_structure,
            **kwargs,
        )

    @property
    def structure(self) -> ClusteringStructure:
        """The underlying clustering data structure."""
        return self._structure

    @property
    def points_seen(self) -> int:
        """Total number of stream points observed so far."""
        return self._points_seen

    @property
    def dimension(self) -> int | None:
        """Dimensionality of the stream (None until the first point arrives)."""
        return self._dimension

    def insert(self, point: np.ndarray) -> None:
        """Buffer one point; flush a base bucket when the buffer reaches ``m``.

        Thin per-point wrapper over the batch machinery: one row lands in the
        preallocated :class:`~repro.core.buffer.BucketBuffer` and a full
        buffer is handed to the structure as a base bucket.
        """
        row = np.asarray(point, dtype=self._dtype).reshape(-1)
        self._require_dimension(row.shape[0], what="point")
        self._buffer.append(row)
        self._points_seen += 1
        if self._buffer.is_full:
            self._flush_buffer()

    def insert_batch(self, points: np.ndarray) -> None:
        """Vectorized batch insert: full buckets are zero-copy slices.

        The ragged head tops up the partial bucket and the ragged tail is
        copied into it; every aligned run of ``m`` interior rows becomes a
        base bucket that references the input array directly (no per-point
        Python work).  All completed buckets are handed to the structure in
        one :meth:`~repro.core.base.ClusteringStructure.insert_buckets` call
        so carry propagation is amortized across the batch.

        Because full buckets alias the input, the caller must not mutate the
        array after inserting it (pass a copy to keep ownership).  The views
        also keep the whole input array alive until those buckets are merged
        into sampled coresets — callers streaming very large arrays they
        intend to discard can pass copies to trade one memcpy for earlier
        reclamation.
        """
        arr = coerce_batch(points, dtype=self._dtype)
        if arr.shape[0] == 0:
            return
        self._require_dimension(arr.shape[1], what="points")
        blocks = self._buffer.take_full_blocks(arr)
        self._points_seen += arr.shape[0]
        if blocks:
            self._structure.insert_buckets(
                make_base_buckets(
                    blocks,
                    self._structure.num_base_buckets + 1,
                    sketcher=self._sketcher,
                )
            )

    def _require_dimension(self, dimension: int, what: str = "point") -> None:
        self._dimension = require_dimension(self._dimension, dimension, what=what)

    def query(self) -> QueryResult:
        """Answer one clustering query through the serving pipeline.

        Assembles the query coreset (structure coreset plus the partial base
        bucket), hands it to the :class:`~repro.queries.serving.QueryEngine`
        — warm-start Lloyd in steady state, cold k-means++ on the first query
        or after drift — and records per-query timing and cache counters in
        :attr:`last_query_stats`.
        """
        return self._serve_query(self.config.k)

    def query_multi_k(self, ks: Sequence[int]) -> dict[int, QueryResult]:
        """Answer a batched query for several ``k`` values at once.

        The coreset is assembled (and its squared norms computed) exactly
        once for the whole sweep; each ``k`` then costs only its own center
        extraction.  This is the fast path behind the Figure 4/6 harness's
        k-sweeps.  Each returned result's ``stats`` carries its amortized
        share of the sweep's assembly/solve wall-clock.
        """
        return self._serve_multi_k(ks)

    def _coreset_pieces(self) -> WeightedPointSet:
        """Merge the structure's coreset with the partial bucket."""
        coreset = self._structure.query_coreset()
        partial = self._partial_bucket_points()
        return coreset.union(partial) if partial.size else coreset

    def _structure_cache_stats(self):
        return self._structure.cache_stats()

    def stored_points(self) -> int:
        """Points held by the structure plus the partial base bucket."""
        return self._structure.stored_points() + self._buffer.size

    def _flush_buffer(self) -> None:
        index = self._structure.num_base_buckets + 1
        block = self._buffer.drain()
        data = WeightedPointSet.from_points(block, sketch=sketch_for(self._sketcher, block))
        self._structure.insert_bucket(Bucket(data=data, start=index, end=index, level=0))

    def _partial_bucket_points(self) -> WeightedPointSet:
        if self._buffer.is_empty:
            return WeightedPointSet.empty(self._dimension or 1, dtype=self._dtype)
        block = self._buffer.snapshot()
        return WeightedPointSet.from_points(block, sketch=sketch_for(self._sketcher, block))

    # -- checkpointing -------------------------------------------------------

    def _config_tree(self) -> dict:
        return {"streaming": streaming_config_to_dict(self.config), **self._extra_config()}

    def _extra_config(self) -> dict:
        """Extra fingerprinted construction parameters (RCC adds nesting depth)."""
        return {}

    def _state_tree(self) -> dict:
        from ..checkpoint.state import rng_state

        return {
            "points_seen": self._points_seen,
            "dimension": self._dimension,
            "buffer": self._buffer.state_dict(),
            "rng": rng_state(self._rng),
            "constructor": self._structure.constructor.state_dict(),
            "engine": self._engine.state_dict(),
            "structure": self._structure.state_dict(),
        }

    def _load_state_tree(self, state: dict) -> None:
        from ..checkpoint.state import rng_from_state

        self._points_seen = int(state["points_seen"])
        self._dimension = None if state["dimension"] is None else int(state["dimension"])
        self._buffer.load_state(state["buffer"])
        self._rng = rng_from_state(state["rng"])
        self._structure.constructor.load_state(state["constructor"])
        self._engine.load_state(state["engine"])
        self._structure.load_state(state["structure"])

    @classmethod
    def _construct_for_restore(
        cls, config: StreamingConfig, config_tree: dict
    ) -> "StreamClusterDriver":
        """Build a fresh instance for restore (subclasses add extra args)."""
        return cls(config)

    @classmethod
    def _from_checkpoint(cls, manifest, state, shards, **overrides):
        cls._reject_overrides(overrides)
        config_tree = manifest["config"]
        config = streaming_config_from_dict(config_tree["streaming"])
        clusterer = cls._construct_for_restore(config, config_tree)
        clusterer._load_state_tree(state)
        return clusterer


class CoresetTreeClusterer(StreamClusterDriver):
    """CT: the r-way merging coreset tree behind the generic driver.

    With ``merge_degree=2`` this is the streamkm++ algorithm.
    """

    shard_structure = "ct"
    checkpoint_name = "ct"

    def __init__(self, config: StreamingConfig) -> None:
        constructor = config.make_constructor()
        structure = CoresetTree(constructor, merge_degree=config.merge_degree)
        super().__init__(config, structure)

    @property
    def tree(self) -> CoresetTree:
        """The underlying coreset tree."""
        return self.structure  # type: ignore[return-value]


class CachedCoresetTreeClusterer(StreamClusterDriver):
    """CC: coreset tree plus coreset cache behind the generic driver."""

    shard_structure = "cc"
    checkpoint_name = "cc"

    def __init__(self, config: StreamingConfig) -> None:
        constructor = config.make_constructor()
        structure = CachedCoresetTree(constructor, merge_degree=config.merge_degree)
        super().__init__(config, structure)

    @property
    def cached_tree(self) -> CachedCoresetTree:
        """The underlying cached coreset tree."""
        return self.structure  # type: ignore[return-value]

    def _answered_from_cache(self) -> bool:
        cached = self.cached_tree
        return cached.cached_answer_count > 0 or len(cached.cache) > 0


class RecursiveCachedClusterer(StreamClusterDriver):
    """RCC: recursive coreset cache behind the generic driver."""

    shard_structure = "rcc"
    checkpoint_name = "rcc"

    def __init__(self, config: StreamingConfig, nesting_depth: int = 3) -> None:
        constructor = config.make_constructor()
        structure = RecursiveCachedTree(constructor, nesting_depth=nesting_depth)
        super().__init__(config, structure)

    @property
    def recursive_tree(self) -> RecursiveCachedTree:
        """The underlying recursive cached structure."""
        return self.structure  # type: ignore[return-value]

    def _extra_config(self) -> dict:
        return {"nesting_depth": self.recursive_tree.nesting_depth}

    @classmethod
    def _construct_for_restore(cls, config, config_tree):
        return cls(config, nesting_depth=int(config_tree["nesting_depth"]))
