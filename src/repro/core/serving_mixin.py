"""Shared query-serving plumbing for coreset-backed clusterers.

:class:`StreamClusterDriver` (CT/CC/RCC) and
:class:`~repro.core.online_cc.OnlineCCClusterer`'s fallback path run the same
query flow: assemble the coreset (structure coreset ∪ partial base bucket,
timed), hand it to the :class:`~repro.queries.serving.QueryEngine`, and record
:class:`~repro.queries.serving.QueryStats`.  This mixin holds that flow once
so the two user-facing classes cannot drift apart; they provide the
structure-specific hooks (:meth:`_coreset_pieces`,
:meth:`_structure_cache_stats`, :meth:`_answered_from_cache`).

For batched multi-k sweeps the assembly and solve wall-clock are shared by
the whole sweep, so each per-k :class:`QueryStats` carries its **amortized
share** (total divided by the number of ``k`` values): summing the returned
stats reproduces the sweep's real wall-clock instead of overcounting it.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..coreset.bucket import WeightedPointSet
from ..queries.serving import QueryEngine, QueryStats, Solution
from .base import QueryResult

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from .cache import CacheStats

__all__ = ["CoresetServingMixin"]


class CoresetServingMixin:
    """Query flow shared by every clusterer that serves from a coreset.

    Hosts require three attributes — ``_engine`` (:class:`QueryEngine`),
    ``_rng`` (the query-time randomness), and ``_last_query_stats`` — and
    override the hooks below.
    """

    _engine: QueryEngine
    _rng: np.random.Generator
    _last_query_stats: QueryStats | None

    # -- hooks ---------------------------------------------------------------

    def _coreset_pieces(self) -> WeightedPointSet:
        """Assemble the (untimed) query coreset; overridden per structure."""
        raise NotImplementedError

    def _structure_cache_stats(self) -> "CacheStats | None":
        """Coreset-cache counters of the backing structure (None if cache-less)."""
        return None

    def _answered_from_cache(self) -> bool:
        """Whether this query reused cached coresets (CC overrides)."""
        return False

    def _refine_solution(
        self, coreset: WeightedPointSet, k: int, solution: Solution
    ) -> Solution:
        """Post-solve refinement hook, run inside the timed solve section.

        The default is the identity.  Soft clustering overrides it to run a
        fuzzy c-means descent seeded from the engine's (hard) centers; the
        engine's warm-start state deliberately keeps the *hard* solution, so
        refinement never feeds back into the warm/cold/drift accounting.
        """
        return solution

    # -- shared flow ---------------------------------------------------------

    @property
    def query_engine(self) -> QueryEngine:
        """The query-serving engine (warm-start state and counters)."""
        return self._engine

    @property
    def last_query_stats(self) -> QueryStats | None:
        """Serving statistics of the most recent served query (None before one).

        After a multi-k sweep this holds the final ``k``'s stats, whose
        timing fields are that query's amortized share of the sweep.
        """
        return self._last_query_stats

    def _assemble_coreset(self) -> tuple[WeightedPointSet, float]:
        """Run :meth:`_coreset_pieces` under a timer; reject empty streams."""
        start = time.perf_counter()
        combined = self._coreset_pieces()
        elapsed = time.perf_counter() - start
        if combined.size == 0:
            raise RuntimeError("cannot answer a clustering query before any point arrives")
        return combined, elapsed

    def collect_serving_snapshot(self) -> tuple[WeightedPointSet, "CacheStats | None"]:
        """Assemble the query coreset and cache counters for snapshot publication.

        The writer-plane half of the concurrent serving split (see
        :mod:`repro.serving`): coreset assembly may mutate structure caches,
        so it must run on the ingest thread; the returned pieces are what a
        :class:`~repro.serving.plane.ServingPlane` freezes into an immutable
        published :class:`~repro.serving.snapshot.CoresetSnapshot`.
        """
        return self._coreset_pieces(), self._structure_cache_stats()

    def serving_plane(self, **kwargs):
        """Wrap this clusterer in a :class:`~repro.serving.plane.ServingPlane`.

        Convenience for the concurrent serving split: ``clusterer.
        serving_plane()`` gives the writer handle whose :meth:`~repro.serving.
        plane.ServingPlane.reader` hands out lock-free query readers.
        """
        from ..serving.plane import ServingPlane

        return ServingPlane(self, **kwargs)

    def _serve_query(self, k: int, force_cold: bool = False) -> QueryResult:
        """Answer one single-k query through the serving pipeline.

        ``force_cold`` always runs the cold k-means++ path (keeping a warm
        candidate only if it is better) — used by callers that anchor other
        state on the answer's quality, like OnlineCC's cost bounds.
        """
        combined, assembly_seconds = self._assemble_coreset()
        start = time.perf_counter()
        solution = self._engine.solve(combined, k, self._rng, force_cold=force_cold)
        solution = self._refine_solution(combined, k, solution)
        solve_seconds = time.perf_counter() - start
        stats = self._record_stats(combined.size, assembly_seconds, solve_seconds, solution)
        return QueryResult(
            centers=solution.centers,
            coreset_points=combined.size,
            from_cache=self._answered_from_cache(),
            warm_start=solution.warm_start,
            stats=stats,
        )

    def _serve_multi_k(self, ks: Sequence[int]) -> dict[int, QueryResult]:
        """Answer a batched k-sweep; per-k stats carry amortized time shares."""
        combined, assembly_seconds = self._assemble_coreset()
        start = time.perf_counter()
        solutions = self._engine.solve_multi(combined, tuple(int(k) for k in ks), self._rng)
        solutions = {
            k: self._refine_solution(combined, k, solution)
            for k, solution in solutions.items()
        }
        solve_seconds = time.perf_counter() - start
        from_cache = self._answered_from_cache()
        share = 1.0 / max(len(solutions), 1)
        results: dict[int, QueryResult] = {}
        for k, solution in solutions.items():
            stats = self._record_stats(
                combined.size,
                assembly_seconds * share,
                solve_seconds * share,
                solution,
            )
            results[k] = QueryResult(
                centers=solution.centers,
                coreset_points=combined.size,
                from_cache=from_cache,
                warm_start=solution.warm_start,
                stats=stats,
            )
        return results

    def _record_stats(
        self,
        coreset_points: int,
        assembly_seconds: float,
        solve_seconds: float,
        solution: Solution,
    ) -> QueryStats:
        cache = self._structure_cache_stats()
        stats = QueryStats(
            assembly_seconds=assembly_seconds,
            solve_seconds=solve_seconds,
            coreset_points=coreset_points,
            warm_start=solution.warm_start,
            drift_fallback=solution.drift_fallback,
            cost=solution.cost,
            cache_hits=cache.hits if cache is not None else 0,
            cache_misses=cache.misses if cache is not None else 0,
        )
        self._last_query_stats = stats
        return stats
