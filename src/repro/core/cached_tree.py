"""CC — the coreset tree with coreset caching (Algorithm 3).

CC keeps the same r-way coreset tree as CT for updates, plus a
:class:`~repro.core.cache.CoresetCache` that remembers coresets computed for
recent queries.  When a query arrives with ``N`` base buckets ingested:

1. If a coreset for ``[1, N]`` is already cached, return it.
2. Otherwise split ``[1, N]`` into ``[1, N1]`` (``N1 = major(N, r)``), ideally
   served from the cache, and ``[N1 + 1, N]``, served by the at most ``r - 1``
   tree buckets covering that suffix.
3. Merge the pieces into a single coreset, store it in the cache under key
   ``N``, evict keys outside ``prefixsum(N, r) ∪ {N}``, and return it.

If the cache does not hold ``N1`` (queries were infrequent), the algorithm
falls back to CT's full merge — so CC is never worse than CT by more than the
cost of one coreset construction.
"""

from __future__ import annotations

from ..coreset.bucket import Bucket, WeightedPointSet
from ..coreset.construction import CoresetConstructor
from ..coreset.merge import union_buckets
from .base import ClusteringStructure
from .cache import CacheStats, CoresetCache
from .coreset_tree import CoresetTree
from .numeral import major

__all__ = ["CachedCoresetTree"]


class CachedCoresetTree(ClusteringStructure):
    """Coreset tree + coreset cache (the paper's CC algorithm).

    Parameters
    ----------
    constructor:
        Coreset constructor shared by tree merges and cache refreshes.
    merge_degree:
        Merge degree ``r`` of the underlying tree and of the cache's
        prefixsum eviction rule.
    """

    def __init__(self, constructor: CoresetConstructor, merge_degree: int = 2) -> None:
        self._constructor = constructor
        self._tree = CoresetTree(constructor, merge_degree=merge_degree)
        self._cache = CoresetCache(merge_degree)
        self._fallbacks = 0
        self._cached_answers = 0

    @property
    def tree(self) -> CoresetTree:
        """The underlying coreset tree (exposed for tests and instrumentation)."""
        return self._tree

    @property
    def cache(self) -> CoresetCache:
        """The coreset cache (exposed for tests and instrumentation)."""
        return self._cache

    @property
    def merge_degree(self) -> int:
        """Merge degree ``r``."""
        return self._tree.merge_degree

    @property
    def constructor(self) -> CoresetConstructor:
        """The shared coreset constructor (for checkpointing)."""
        return self._constructor

    @property
    def num_base_buckets(self) -> int:
        """Number of base buckets inserted so far (``N``)."""
        return self._tree.num_base_buckets

    @property
    def fallback_count(self) -> int:
        """How many queries had to fall back to the full CT merge."""
        return self._fallbacks

    @property
    def cached_answer_count(self) -> int:
        """How many queries were answered straight from the cache."""
        return self._cached_answers

    def insert_bucket(self, bucket: Bucket) -> None:
        """Insert a base bucket (identical to CT-Update)."""
        self._tree.insert_bucket(bucket)

    def insert_buckets(self, buckets: list[Bucket]) -> None:
        """Insert several base buckets with the tree's amortized carry pass.

        The cache is query-maintained and untouched by inserts, so batch
        insertion delegates straight to :meth:`CoresetTree.insert_buckets`.
        """
        self._tree.insert_buckets(buckets)

    def query_coreset(self) -> WeightedPointSet:
        """Return a coreset for buckets ``[1, N]``, updating the cache."""
        return self.query_coreset_bucket().data

    def query_coreset_bucket(self) -> Bucket:
        """Same as :meth:`query_coreset` but keeps the span/level metadata."""
        n = self._tree.num_base_buckets
        if n == 0:
            return Bucket(
                data=WeightedPointSet.empty(self._dimension_hint()),
                start=1,
                end=1,
                level=0,
            )

        exact = self._cache.lookup(n)
        if exact is not None:
            self._cached_answers += 1
            return exact

        n1 = major(n, self.merge_degree)
        pieces: list[Bucket]
        cached_prefix = self._cache.lookup(n1) if n1 > 0 else None
        if cached_prefix is None:
            # When major(N) = 0 the whole span is covered by the coreset tree
            # directly (Lemma 5 base case).  When major(N) > 0 but the cache
            # does not hold it (infrequent queries), this is a genuine
            # fallback to the plain CT union.
            if n1 > 0:
                self._fallbacks += 1
            pieces = self._tree.active_buckets()
        else:
            suffix = self._tree.suffix_buckets(after=n1)
            pieces = [cached_prefix, *suffix]

        combined = union_buckets(pieces)
        summary = self._constructor.build(combined.data)
        result = Bucket(
            data=summary,
            start=1,
            end=n,
            level=combined.level + 1,
        )
        self._cache.store(result)
        self._cache.evict_stale(n)
        return result

    def cache_stats(self) -> CacheStats:
        """Hit/miss counters of the coreset cache (Algorithm 3's lookups)."""
        return self._cache.stats()

    def stored_points(self) -> int:
        """Points stored by the tree plus the cache (Table 4 accounting)."""
        return self._tree.stored_points() + self._cache.stored_points()

    def max_level(self) -> int:
        """Maximum coreset level across the tree and the cache."""
        tree_level = self._tree.max_level()
        cache_level = max(
            (bucket.level for bucket in self._cache.buckets()), default=0
        )
        return max(tree_level, cache_level)

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        """Checkpoint state: the tree, the cache, and the query counters."""
        return {
            "tree": self._tree.state_dict(),
            "cache": self._cache.state_dict(),
            "fallbacks": self._fallbacks,
            "cached_answers": self._cached_answers,
        }

    def load_state(self, state: dict) -> None:
        """Restore from :meth:`state_dict` output (constructor kept)."""
        self._tree.load_state(state["tree"])
        self._cache.load_state(state["cache"])
        self._fallbacks = int(state["fallbacks"])
        self._cached_answers = int(state["cached_answers"])

    def _dimension_hint(self) -> int:
        buckets = self._tree.active_buckets()
        if buckets:
            return buckets[0].data.dimension
        return 1
