"""Common interfaces and configuration for the streaming clustering algorithms.

Two layers of abstraction mirror the paper's "driver" design (Algorithm 1):

* :class:`ClusteringStructure` — the clustering data structure ``D`` behind
  the driver.  It consumes *base buckets* (batches of ``m`` points) and can
  produce, on demand, a weighted coreset of everything inserted so far.
  CT, CC, and RCC implement this interface.

* :class:`StreamingClusterer` — the user-facing object.  It consumes points
  one at a time (or in arrays), buffers them into base buckets, and answers
  cluster-center queries.  The generic :class:`~repro.core.driver.StreamClusterDriver`
  wraps any :class:`ClusteringStructure`; OnlineCC implements the interface
  directly because it also does per-point work.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import TYPE_CHECKING, ClassVar, Sequence

import numpy as np

from ..coreset.bucket import Bucket, WeightedPointSet
from ..coreset.construction import CoresetConfig, CoresetConstructor, CoresetMethod

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from ..queries.serving import QueryEngine, QueryStats
    from .cache import CacheStats

__all__ = [
    "StreamingConfig",
    "ClusteringStructure",
    "StreamingClusterer",
    "QueryResult",
    "coerce_batch",
    "require_dimension",
    "validate_base_buckets",
    "streaming_config_to_dict",
    "streaming_config_from_dict",
]


def coerce_batch(points: np.ndarray, dtype: np.dtype | type = np.float64) -> np.ndarray:
    """Coerce a batch of points to a 2-D float array (one validation per batch).

    ``dtype`` is the clusterer's storage dtype: float64 by default, float32
    for clusterers configured with ``StreamingConfig(dtype="float32")``.  A
    batch already in the right dtype is passed through zero-copy.
    """
    arr = np.asarray(points, dtype=dtype)
    if arr.ndim == 1:
        # An empty 1-D input is an empty batch, not a single 0-dimensional
        # point: reshaping it to (1, 0) would defeat the callers' empty-batch
        # guards and poison their stream dimension with 0.
        arr = arr.reshape(1, -1) if arr.size else arr.reshape(0, 0)
    if arr.ndim != 2:
        raise ValueError(f"points must be 1-D or 2-D, got shape {arr.shape}")
    return arr


def require_dimension(current: int | None, dimension: int, what: str = "points") -> int:
    """Return the stream dimension, validating ``dimension`` against ``current``.

    The shared first-point-sets-it / later-points-must-match rule every
    clusterer applies: pass the stored dimension (or None before the first
    point) and assign the result back.
    """
    if current is None:
        return dimension
    if dimension != current:
        raise ValueError(f"{what} dimension is {dimension}, expected {current}")
    return current


def validate_base_buckets(buckets: list[Bucket], expected_start: int, owner: str) -> None:
    """Check that ``buckets`` are consecutive base buckets from ``expected_start``.

    Shared by every structure's ``insert_buckets``: each bucket must be
    level 0 with the next single-index span.
    """
    for offset, bucket in enumerate(buckets):
        if bucket.level != 0:
            raise ValueError(f"{owner}.insert_buckets expects level-0 base buckets")
        index = expected_start + offset
        if bucket.start != index or bucket.end != index:
            raise ValueError(
                f"expected base bucket with span [{index},{index}], "
                f"got [{bucket.start},{bucket.end}]"
            )


@dataclass(frozen=True)
class StreamingConfig:
    """Configuration shared by all streaming clustering algorithms.

    Attributes
    ----------
    k:
        Number of cluster centers returned by queries.
    coreset_size:
        Base-bucket size ``m`` (also the size of every constructed coreset).
        The paper defaults to ``20 * k``.
    merge_degree:
        The coreset-tree merge degree ``r`` (2 reproduces streamkm++).
    coreset_method:
        Which coreset construction to use (see
        :class:`~repro.coreset.construction.CoresetConfig`).
    n_init:
        Number of k-means++ restarts when extracting centers at query time.
    lloyd_iterations:
        Lloyd refinement iterations applied after seeding at query time.
    seed:
        Seed for all randomness inside the algorithm (coreset sampling and
        k-means++).  ``None`` draws fresh entropy.
    warm_start:
        Enable warm-start query refinement: seed Lloyd's algorithm from the
        previous query's centers instead of re-running all ``n_init``
        k-means++ seedings (see :class:`~repro.queries.serving.QueryEngine`).
        Disabling it reproduces the from-scratch query path.
    warm_start_drift_ratio:
        Cost-ratio guard of the warm-start path: a warm solution whose
        normalized cost exceeds this multiple of the previous query's
        normalized cost falls back to the full cold k-means++ run.
    warm_start_refresh_interval:
        Periodic cold re-anchor: after this many consecutive warm-served
        queries the next query also runs the cold path (keeping the better
        answer), bounding how long a stable-but-suboptimal warm optimum can
        persist.  ``None`` disables the re-anchor.
    dtype:
        Storage dtype for point coordinates: ``"float64"`` (the default —
        double precision throughout, with every equivalence contract of the
        package proven at this dtype) or ``"float32"`` (halves the memory
        bandwidth and footprint of buffers, buckets, and shared-memory
        slabs; costs and weights are still accumulated in float64).  Part
        of the checkpoint config fingerprint — a snapshot taken at one
        dtype never silently restores at another.
    sketch_dim:
        Opt-in Johnson–Lindenstrauss sketching (see
        :mod:`repro.kernels.sketch`): points are projected into this many
        dimensions once at ingest, the merge/query inner loops run in the
        sketched space, and an exact top-2 re-rank keeps reported centers
        and costs full-precision.  ``None`` (default) disables sketching;
        streams whose dimension is ``<= sketch_dim`` are never projected.
        Part of the checkpoint config fingerprint, like ``dtype``.
    sketch_kind:
        Which JL transform to use when ``sketch_dim`` is set: ``"gaussian"``
        (dense, default) or ``"countsketch"`` (sparse ±1).  Also
        fingerprinted.
    """

    k: int
    coreset_size: int | None = None
    merge_degree: int = 2
    coreset_method: CoresetMethod = "sensitivity"
    n_init: int = 5
    lloyd_iterations: int = 20
    seed: int | None = None
    warm_start: bool = True
    warm_start_drift_ratio: float = 2.0
    warm_start_refresh_interval: int | None = 64
    dtype: str = "float64"
    sketch_dim: int | None = None
    sketch_kind: str = "gaussian"

    def __post_init__(self) -> None:
        from ..kernels.dtypes import resolve_dtype
        from ..kernels.sketch import SKETCH_KINDS

        if self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")
        # Normalise dtype-likes to the canonical name so that configs compare
        # (and fingerprint) equal regardless of how the dtype was spelled.
        object.__setattr__(self, "dtype", resolve_dtype(self.dtype).name)
        if self.sketch_dim is not None and self.sketch_dim <= 0:
            raise ValueError("sketch_dim must be positive when given")
        if self.sketch_kind not in SKETCH_KINDS:
            raise ValueError(
                f"unknown sketch kind {self.sketch_kind!r}; available: {SKETCH_KINDS}"
            )
        if self.merge_degree < 2:
            raise ValueError(f"merge_degree must be >= 2, got {self.merge_degree}")
        if self.coreset_size is not None and self.coreset_size <= 0:
            raise ValueError("coreset_size must be positive when given")
        if self.n_init <= 0:
            raise ValueError("n_init must be positive")
        if self.lloyd_iterations < 0:
            raise ValueError("lloyd_iterations must be non-negative")
        if self.warm_start_drift_ratio <= 1.0:
            raise ValueError("warm_start_drift_ratio must exceed 1.0")
        if self.warm_start_refresh_interval is not None and self.warm_start_refresh_interval < 1:
            raise ValueError("warm_start_refresh_interval must be >= 1 or None")

    @property
    def bucket_size(self) -> int:
        """The base-bucket size ``m`` (defaults to ``20 * k``)."""
        return self.coreset_size if self.coreset_size is not None else 20 * self.k

    @property
    def np_dtype(self) -> np.dtype:
        """The configured storage dtype as a numpy dtype object."""
        return np.dtype(self.dtype)

    def coreset_config(self) -> CoresetConfig:
        """The coreset-construction configuration implied by this config."""
        return CoresetConfig(
            k=self.k,
            coreset_size=self.bucket_size,
            method=self.coreset_method,
            sketch_dim=self.sketch_dim,
            sketch_kind=self.sketch_kind,
        )

    def make_constructor(self, seed: int | None = None) -> CoresetConstructor:
        """Create a coreset constructor; ``seed`` overrides the config seed."""
        effective_seed = seed if seed is not None else self.seed
        return CoresetConstructor(self.coreset_config(), seed=effective_seed)

    def make_query_engine(self) -> "QueryEngine":
        """Create the query-serving engine implied by this config.

        One engine instance per clusterer: it owns the warm-start state and
        the warm/cold/drift counters for that clusterer's queries.
        """
        from ..queries.serving import QueryEngine

        return QueryEngine(
            n_init=self.n_init,
            max_iterations=self.lloyd_iterations,
            warm_start=self.warm_start,
            drift_ratio=self.warm_start_drift_ratio,
            refresh_interval=self.warm_start_refresh_interval,
        )


def streaming_config_to_dict(config: StreamingConfig) -> dict:
    """JSON-able dict form of a :class:`StreamingConfig` (checkpoint manifests)."""
    return asdict(config)


def streaming_config_from_dict(data: dict) -> StreamingConfig:
    """Rebuild a :class:`StreamingConfig` from :func:`streaming_config_to_dict` output."""
    return StreamingConfig(**data)


@dataclass(frozen=True)
class QueryResult:
    """Cluster centers returned by a clustering query.

    Attributes
    ----------
    centers:
        Array of shape ``(k, d)``.
    coreset_points:
        Number of weighted points the final k-means++ ran on (0 when the
        answer came from a purely online path, as in OnlineCC's fast path).
    from_cache:
        True when the answer reused a cached coreset (CC/RCC) or the online
        centers (OnlineCC) rather than merging the full tree.
    warm_start:
        True when the centers came from the warm-start Lloyd descent (seeded
        from the previous query) rather than fresh k-means++ restarts.
    stats:
        Per-query serving statistics (assembly/solve timing, cache counters);
        ``None`` for algorithms that bypass the serving pipeline.
    """

    centers: np.ndarray
    coreset_points: int = 0
    from_cache: bool = False
    warm_start: bool = False
    stats: "QueryStats | None" = None


class ClusteringStructure(ABC):
    """The clustering data structure ``D`` of Algorithm 1.

    Implementations consume full base buckets and can produce a coreset of
    everything inserted so far.  They also expose simple accounting hooks the
    benchmarks use (stored points, maximum coreset level).
    """

    @abstractmethod
    def insert_bucket(self, bucket: Bucket) -> None:
        """Insert one base bucket (``level == 0``) into the structure."""

    def insert_buckets(self, buckets: list[Bucket]) -> None:
        """Insert several consecutive base buckets at once.

        The default delegates to :meth:`insert_bucket`; tree-shaped
        implementations override it with an amortized carry propagation that
        performs all merges of one level in a single pass.  The final state
        must be identical to inserting the buckets one at a time.
        """
        for bucket in buckets:
            self.insert_bucket(bucket)

    @abstractmethod
    def query_coreset(self) -> WeightedPointSet:
        """Return a weighted coreset of all points inserted so far.

        Implementations are allowed to update internal caches as a side
        effect (that is the whole point of CC/RCC).
        """

    @abstractmethod
    def stored_points(self) -> int:
        """Number of weighted points currently held (for memory accounting)."""

    @abstractmethod
    def max_level(self) -> int:
        """Maximum coreset level currently present in the structure."""

    def cache_stats(self) -> "CacheStats | None":
        """Aggregate coreset-cache lookup counters, or ``None`` if cache-less.

        CC reports its single :class:`~repro.core.cache.CoresetCache`; RCC
        aggregates the caches of every recursive order.  The default (CT) has
        no cache.
        """
        return None

    @property
    @abstractmethod
    def num_base_buckets(self) -> int:
        """How many base buckets have been inserted so far (``N``)."""


class StreamingClusterer(ABC):
    """User-facing streaming clustering interface.

    Concrete algorithms: CT, CC, RCC (via the driver) and OnlineCC, plus the
    baselines in :mod:`repro.baselines`.

    Every concrete algorithm is checkpointable: :meth:`snapshot` persists the
    complete live state (structures, buffers, caches, warm-start serving
    state, and all random-generator streams) and :meth:`restore` rebuilds it
    so that continued ingestion is bit-identical to a process that never
    stopped.  See :mod:`repro.checkpoint`.
    """

    #: Registry name used by the checkpoint subsystem (set per concrete class).
    checkpoint_name: ClassVar[str | None] = None

    @abstractmethod
    def insert(self, point: np.ndarray) -> None:
        """Insert a single point from the stream."""

    def insert_batch(self, points: np.ndarray) -> None:
        """Insert an array of points, in order — the batch ingestion contract.

        Every algorithm (CT/CC/RCC, OnlineCC, and the baselines) accepts
        batches through this method and must produce exactly the state a
        point-by-point :meth:`insert` loop would.  The default coerces once
        and loops; vectorizable algorithms override it with zero-copy bucket
        slicing (see :class:`~repro.core.driver.StreamClusterDriver`).
        """
        arr = coerce_batch(points)
        for row in arr:
            self.insert(row)

    def insert_many(self, points: np.ndarray) -> None:
        """Insert an array of points, in order (alias of :meth:`insert_batch`)."""
        self.insert_batch(points)

    @abstractmethod
    def query(self) -> QueryResult:
        """Return ``k`` cluster centers for everything observed so far."""

    def query_multi_k(self, ks: Sequence[int]) -> dict[int, QueryResult]:
        """Answer one batched query for several values of ``k`` at once.

        Coreset-backed algorithms assemble the query coreset once and
        amortize it across the whole k-sweep (the Figure 4/6 access
        pattern).  Algorithms whose state is tied to a single ``k`` do not
        support this and raise :class:`NotImplementedError`.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support batched multi-k queries"
        )

    @abstractmethod
    def stored_points(self) -> int:
        """Number of weighted points held in memory (for Table 4)."""

    @property
    @abstractmethod
    def points_seen(self) -> int:
        """Total number of stream points observed so far (``n``)."""

    # -- checkpointing --------------------------------------------------------

    def snapshot(self, path: str | Path, annotations: dict | None = None) -> Path:
        """Write this clusterer's full live state to a checkpoint directory.

        Ingestion may continue afterwards; the snapshot is a consistent cut
        of the stream (parallel engines quiesce their workers first).
        ``annotations`` optionally records stream identity (dataset name,
        generator seed, ...) for load-time verification.  Returns the
        checkpoint directory path.
        """
        from ..checkpoint import save_checkpoint

        return save_checkpoint(self, path, annotations=annotations)

    @classmethod
    def restore(cls, path: str | Path, **overrides) -> "StreamingClusterer":
        """Rebuild a clusterer from a checkpoint written by :meth:`snapshot`.

        Called on a concrete class it validates that the checkpoint holds
        that algorithm; called on :class:`StreamingClusterer` it restores
        whatever algorithm the manifest names.  ``overrides`` are runtime
        overrides (e.g. ``backend=`` for the sharded engine).  Raises
        :class:`~repro.checkpoint.CheckpointError` on any invalid checkpoint.
        """
        from ..checkpoint import CheckpointError, load_checkpoint

        clusterer = load_checkpoint(path, **overrides)
        if not isinstance(clusterer, cls):
            # Tear down before raising: a restored sharded engine already
            # started its workers and must not leak them.
            closer = getattr(clusterer, "close", None)
            if closer is not None:
                closer()
            raise CheckpointError(
                f"checkpoint at {path} holds a {type(clusterer).__name__}, "
                f"not a {cls.__name__}"
            )
        return clusterer

    # Checkpoint hooks implemented by every concrete algorithm.

    @classmethod
    def _reject_overrides(cls, overrides: dict) -> None:
        """Shared restore guard: most algorithms accept no runtime overrides."""
        if overrides:
            from ..checkpoint import CheckpointError

            raise CheckpointError(
                f"{cls.__name__} accepts no restore overrides, got {sorted(overrides)}"
            )

    def _config_tree(self) -> dict:
        """JSON-able structure configuration (fingerprinted in the manifest)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement checkpointing"
        )

    def _runtime_tree(self) -> dict:
        """JSON-able runtime knobs recorded but *not* fingerprinted."""
        return {}

    def _state_tree(self) -> dict:
        """Full mutable state as a nested tree (JSON scalars + numpy arrays)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement checkpointing"
        )

    def _shard_trees(self) -> "list[dict] | None":
        """Per-shard state trees (sharded engines only; None otherwise)."""
        return None

    @classmethod
    def _from_checkpoint(
        cls, manifest: dict, state: dict, shards: "list[dict] | None", **overrides
    ) -> "StreamingClusterer":
        """Rebuild an instance from manifest + unpacked state trees."""
        raise NotImplementedError(
            f"{cls.__name__} does not implement checkpointing"
        )
