"""OnlineCC — the hybrid of CC and Sequential k-means (Algorithm 7).

OnlineCC maintains two views of the stream simultaneously:

* a :class:`~repro.core.cached_tree.CachedCoresetTree` (CC), which is provably
  accurate but pays a coreset merge + k-means++ per query, and
* a set of MacQueen-style online centers ``C`` together with an *upper bound*
  ``phi_now`` on their clustering cost, both updated in O(kd) per point.

A query normally returns the online centers in O(1).  Only when the cost
bound has drifted above ``alpha * phi_prev`` — where ``phi_prev`` is the cost
recorded at the previous fallback — does the algorithm fall back to CC:
recompute a coreset, run k-means++ on it, reset the online centers to that
solution, and refresh the bounds.  Lemma 10 shows ``phi_now`` really is an
upper bound on the true cost of the online centers, and Lemma 11 turns that
into the same O(log k) approximation guarantee as CC.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..coreset.bucket import Bucket, WeightedPointSet, make_base_buckets
from ..kernels.sketch import sketch_for
from ..kmeans.sequential import SequentialKMeansState
from ..queries.serving import QueryStats
from .base import (
    QueryResult,
    StreamingClusterer,
    StreamingConfig,
    coerce_batch,
    require_dimension,
    streaming_config_from_dict,
    streaming_config_to_dict,
)
from .buffer import BucketBuffer
from .cached_tree import CachedCoresetTree
from .serving_mixin import CoresetServingMixin

__all__ = ["OnlineCCClusterer"]


class OnlineCCClusterer(CoresetServingMixin, StreamingClusterer):
    """The OnlineCC streaming clusterer.

    Checkpointable: snapshots capture the embedded CC structure *and* the
    Algorithm 7 phase bookkeeping (online centers, ``phi_now``/``phi_prev``
    bounds, fallback counters), so a restored instance makes the same
    fast-path/fallback decisions as an uninterrupted one.

    Parameters
    ----------
    config:
        Shared streaming configuration.
    switch_threshold:
        The factor ``alpha > 1`` by which the cost bound may exceed the last
        fallback cost before the next query falls back to CC (paper default
        1.2; Figure 11 sweeps 1.2–6.0).
    coreset_epsilon:
        The ``epsilon`` used when converting the coreset cost into the upper
        bound ``phi_now = phi_prev / (1 - epsilon)`` after a fallback.
    """

    checkpoint_name = "onlinecc"

    def __init__(
        self,
        config: StreamingConfig,
        switch_threshold: float = 1.2,
        coreset_epsilon: float = 0.1,
    ) -> None:
        if switch_threshold <= 1.0:
            raise ValueError(
                f"switch_threshold must exceed 1.0, got {switch_threshold}"
            )
        if not 0.0 < coreset_epsilon < 1.0:
            raise ValueError("coreset_epsilon must lie strictly between 0 and 1")
        self.config = config
        self.switch_threshold = switch_threshold
        self.coreset_epsilon = coreset_epsilon

        constructor = config.make_constructor()
        self._cc = CachedCoresetTree(constructor, merge_degree=config.merge_degree)
        self._sketcher = constructor.sketcher
        self._rng = np.random.default_rng(config.seed)
        self._engine = config.make_query_engine()
        self._last_query_stats: QueryStats | None = None

        self._dtype = config.np_dtype
        self._buffer = BucketBuffer(config.bucket_size, dtype=self._dtype)
        self._points_seen = 0
        self._dimension: int | None = None

        self._online: SequentialKMeansState | None = None
        self._phi_now = 0.0
        self._phi_prev = 0.0
        self._fallback_count = 0
        self._fast_answers = 0

    # -- bookkeeping ---------------------------------------------------------

    @property
    def points_seen(self) -> int:
        """Total number of stream points observed so far."""
        return self._points_seen

    @property
    def fallback_count(self) -> int:
        """How many queries fell back to the CC path."""
        return self._fallback_count

    @property
    def fast_answer_count(self) -> int:
        """How many queries were answered from the online centers in O(1)."""
        return self._fast_answers

    @property
    def cached_tree(self) -> CachedCoresetTree:
        """The embedded CC structure (exposed for tests and benchmarks)."""
        return self._cc

    @property
    def cost_bound(self) -> float:
        """Current upper bound ``phi_now`` on the online centers' cost."""
        return self._phi_now

    # -- updates ---------------------------------------------------------------

    def insert(self, point: np.ndarray) -> None:
        """Process one stream point through both the online and the CC path."""
        row = np.asarray(point, dtype=self._dtype).reshape(-1)
        if self._dimension is None:
            self._dimension = row.shape[0]
            self._online = SequentialKMeansState(self.config.k, self._dimension)
        elif row.shape[0] != self._dimension:
            raise ValueError(
                f"point has dimension {row.shape[0]}, expected {self._dimension}"
            )
        assert self._online is not None

        # Online path: MacQueen update plus the running cost upper bound.
        self._phi_now += self._online.update(row)

        # CC path: buffer into base buckets.
        self._buffer.append(row)
        self._points_seen += 1
        if self._buffer.is_full:
            self._flush_buffer()

    def insert_batch(self, points: np.ndarray) -> None:
        """Batch insert: vectorized bucket slicing for CC, sequential MacQueen.

        The CC side consumes the batch through zero-copy bucket slicing and
        one amortized ``insert_buckets`` call, exactly like the driver.  The
        online side is MacQueen's rule, which is order-dependent by
        definition, so it loops — but over pre-coerced rows, with validation
        paid once per batch.
        """
        arr = coerce_batch(points, dtype=self._dtype)
        if arr.shape[0] == 0:
            return
        self._dimension = require_dimension(self._dimension, arr.shape[1])
        if self._online is None:
            self._online = SequentialKMeansState(self.config.k, self._dimension)

        # Accumulate into phi_now with per-point associativity so the cost
        # bound (and hence every fallback decision) matches the insert loop
        # bit for bit.
        self._phi_now = self._online.update_many(arr, initial=self._phi_now)

        blocks = self._buffer.take_full_blocks(arr)
        self._points_seen += arr.shape[0]
        if blocks:
            self._cc.insert_buckets(
                make_base_buckets(
                    blocks, self._cc.num_base_buckets + 1, sketcher=self._sketcher
                )
            )

    # -- queries ---------------------------------------------------------------

    def query(self) -> QueryResult:
        """Return cluster centers, using the O(1) fast path whenever allowed."""
        if self._points_seen == 0 or self._online is None:
            raise RuntimeError("cannot answer a clustering query before any point arrives")

        needs_fallback = (
            not self._online.is_initialized
            or self._phi_prev == 0.0
            or self._phi_now > self.switch_threshold * self._phi_prev
        )
        if not needs_fallback:
            self._fast_answers += 1
            return QueryResult(
                centers=self._online.centers.copy(),
                coreset_points=0,
                from_cache=True,
            )
        return self._fallback_query()

    def stored_points(self) -> int:
        """Points held by the CC structure, the partial bucket, and the online centers."""
        online_points = self.config.k if self._online is not None else 0
        return self._cc.stored_points() + self._buffer.size + online_points

    # -- internals ---------------------------------------------------------------

    def query_multi_k(self, ks: Sequence[int]) -> dict[int, QueryResult]:
        """Serve a k-sweep from one coreset assembly (read-only CC path).

        Multi-k sweeps always go through the coreset (the online centers
        exist only for the configured ``k``) and do not touch the online
        state or the cost bounds — Algorithm 7's bookkeeping is reserved for
        the single-k :meth:`query` flow.  Per-k ``stats`` carry amortized
        shares of the sweep's wall-clock.
        """
        if self._points_seen == 0:
            raise RuntimeError("cannot answer a clustering query before any point arrives")
        return self._serve_multi_k(ks)

    def _coreset_pieces(self) -> WeightedPointSet:
        """Merge the embedded CC's coreset with the partial bucket."""
        coreset = self._cc.query_coreset()
        partial = self._partial_bucket_points()
        return coreset.union(partial) if partial.size else coreset

    def _structure_cache_stats(self):
        return self._cc.cache_stats()

    def _fallback_query(self) -> QueryResult:
        self._fallback_count += 1
        # Force the cold path: Algorithm 7 re-anchors phi_prev/phi_now on
        # this answer's cost, so it must be of from-scratch k-means++ quality
        # (a warm-only answer may legally be up to drift_ratio worse, which
        # would stretch the online phase beyond what Lemma 11 assumes).
        result = self._serve_query(self.config.k, force_cold=True)
        assert result.stats is not None

        # Reset the online state to the freshly computed solution and refresh
        # the cost bounds (lines 14-16 of Algorithm 7).  The engine already
        # evaluated the weighted cost of its solution on the coreset.
        self._phi_prev = result.stats.cost
        self._phi_now = self._phi_prev / (1.0 - self.coreset_epsilon)
        if self._phi_prev == 0.0:
            # A zero-cost solution (e.g. fewer distinct points than k) would
            # otherwise force a fallback on every subsequent query.
            self._phi_prev = np.finfo(np.float64).tiny
        assert self._online is not None
        self._online.set_centers(result.centers)
        return result

    def _flush_buffer(self) -> None:
        index = self._cc.num_base_buckets + 1
        block = self._buffer.drain()
        data = WeightedPointSet.from_points(block, sketch=sketch_for(self._sketcher, block))
        self._cc.insert_bucket(Bucket(data=data, start=index, end=index, level=0))

    def _partial_bucket_points(self) -> WeightedPointSet:
        if self._buffer.is_empty:
            return WeightedPointSet.empty(self._dimension or 1)
        block = self._buffer.snapshot()
        return WeightedPointSet.from_points(block, sketch=sketch_for(self._sketcher, block))

    # -- checkpointing -------------------------------------------------------

    def _config_tree(self) -> dict:
        return {
            "streaming": streaming_config_to_dict(self.config),
            "switch_threshold": self.switch_threshold,
            "coreset_epsilon": self.coreset_epsilon,
        }

    def _state_tree(self) -> dict:
        from ..checkpoint.state import rng_state

        return {
            "points_seen": self._points_seen,
            "dimension": self._dimension,
            "buffer": self._buffer.state_dict(),
            "rng": rng_state(self._rng),
            "constructor": self._cc.constructor.state_dict(),
            "engine": self._engine.state_dict(),
            "cc": self._cc.state_dict(),
            "online": None if self._online is None else self._online.state_dict(),
            "phi_now": self._phi_now,
            "phi_prev": self._phi_prev,
            "fallback_count": self._fallback_count,
            "fast_answers": self._fast_answers,
        }

    def _load_state_tree(self, state: dict) -> None:
        from ..checkpoint.state import rng_from_state

        self._points_seen = int(state["points_seen"])
        self._dimension = None if state["dimension"] is None else int(state["dimension"])
        self._buffer.load_state(state["buffer"])
        self._rng = rng_from_state(state["rng"])
        self._cc.constructor.load_state(state["constructor"])
        self._engine.load_state(state["engine"])
        self._cc.load_state(state["cc"])
        online = state["online"]
        self._online = None if online is None else SequentialKMeansState.from_state(online)
        self._phi_now = float(state["phi_now"])
        self._phi_prev = float(state["phi_prev"])
        self._fallback_count = int(state["fallback_count"])
        self._fast_answers = int(state["fast_answers"])

    @classmethod
    def _from_checkpoint(cls, manifest, state, shards, **overrides):
        cls._reject_overrides(overrides)
        config_tree = manifest["config"]
        clusterer = cls(
            streaming_config_from_dict(config_tree["streaming"]),
            switch_threshold=float(config_tree["switch_threshold"]),
            coreset_epsilon=float(config_tree["coreset_epsilon"]),
        )
        clusterer._load_state_tree(state)
        return clusterer
