"""CT — the r-way merging coreset tree (Algorithm 2, generalised streamkm++).

The tree keeps buckets at multiple levels.  Level 0 holds base buckets of
``m`` raw points; a level-``j`` bucket is a coreset summarising ``r^j`` base
buckets.  Whenever a level accumulates ``r`` buckets they are merged (via the
coreset constructor) into one bucket at the next level — exactly the carry
propagation of incrementing a base-``r`` counter.  The distribution of
buckets over levels therefore follows the base-``r`` digits of ``N``, the
number of base buckets inserted so far.

Answering a query unions every active bucket in the tree; the driver combines
the union with the partially-filled base bucket and runs k-means++ on it.
"""

from __future__ import annotations

from ..coreset.bucket import Bucket, WeightedPointSet
from ..coreset.construction import CoresetConstructor
from ..coreset.merge import merge_buckets
from .base import ClusteringStructure, validate_base_buckets

__all__ = ["CoresetTree"]


class CoresetTree(ClusteringStructure):
    """r-way merging coreset tree.

    Parameters
    ----------
    constructor:
        The coreset constructor used for every merge.
    merge_degree:
        The merge degree ``r >= 2``.  ``r = 2`` reproduces streamkm++.
    """

    def __init__(self, constructor: CoresetConstructor, merge_degree: int = 2) -> None:
        if merge_degree < 2:
            raise ValueError(f"merge_degree must be >= 2, got {merge_degree}")
        self._constructor = constructor
        self._merge_degree = merge_degree
        # _levels[j] is the list of active buckets at level j, oldest first.
        self._levels: list[list[Bucket]] = []
        self._num_base_buckets = 0
        self._merge_count = 0

    @property
    def merge_degree(self) -> int:
        """The merge degree ``r``."""
        return self._merge_degree

    @property
    def constructor(self) -> CoresetConstructor:
        """The coreset constructor used for every merge (for checkpointing)."""
        return self._constructor

    @property
    def num_base_buckets(self) -> int:
        """Number of base buckets inserted so far (``N``)."""
        return self._num_base_buckets

    @property
    def merge_count(self) -> int:
        """How many coreset merges have been performed (for instrumentation)."""
        return self._merge_count

    @property
    def levels(self) -> list[list[Bucket]]:
        """Read-only view of the per-level bucket lists (oldest first)."""
        return [list(level) for level in self._levels]

    def insert_bucket(self, bucket: Bucket) -> None:
        """Insert a base bucket and propagate carries (CT-Update)."""
        if bucket.level != 0:
            raise ValueError("CoresetTree.insert_bucket expects a level-0 base bucket")
        expected_index = self._num_base_buckets + 1
        if bucket.start != expected_index or bucket.end != expected_index:
            raise ValueError(
                f"expected base bucket with span [{expected_index},{expected_index}], "
                f"got [{bucket.start},{bucket.end}]"
            )
        self._num_base_buckets += 1
        self._append_at_level(0, bucket)
        level = 0
        while len(self._levels[level]) >= self._merge_degree:
            to_merge = self._levels[level]
            merged = merge_buckets(to_merge, self._constructor)
            self._merge_count += 1
            self._levels[level] = []
            self._append_at_level(level + 1, merged)
            level += 1

    def insert_buckets(self, buckets: list[Bucket]) -> None:
        """Insert several consecutive base buckets with amortized carries.

        Instead of cascading a full carry propagation per bucket, all new
        buckets are appended to level 0 and each level is then settled in a
        single pass: every complete group of ``r`` oldest buckets merges into
        one bucket carried to the next level.  Because merge randomness is
        span-keyed (see :meth:`~repro.coreset.construction.CoresetConstructor.build_for_span`)
        and merged spans are always the same aligned ``r^j`` blocks, the final
        tree is bit-identical to inserting the buckets one at a time.
        """
        if not buckets:
            return
        validate_base_buckets(buckets, self._num_base_buckets + 1, "CoresetTree")
        self._num_base_buckets += len(buckets)
        self._ensure_level(0)
        self._levels[0].extend(buckets)
        level = 0
        while level < len(self._levels):
            pending = self._levels[level]
            if len(pending) >= self._merge_degree:
                carried: list[Bucket] = []
                while len(pending) >= self._merge_degree:
                    group = pending[: self._merge_degree]
                    pending = pending[self._merge_degree :]
                    carried.append(merge_buckets(group, self._constructor))
                    self._merge_count += 1
                self._levels[level] = pending
                self._ensure_level(level + 1)
                self._levels[level + 1].extend(carried)
            level += 1

    def active_buckets(self) -> list[Bucket]:
        """All active buckets, ordered by span (oldest range first)."""
        buckets = [b for level in self._levels for b in level]
        return sorted(buckets, key=lambda b: b.start)

    def buckets_at_level(self, level: int) -> list[Bucket]:
        """Active buckets at one level (empty list when the level is empty)."""
        if level < 0 or level >= len(self._levels):
            return []
        return list(self._levels[level])

    def query_coreset(self) -> WeightedPointSet:
        """Union of all active buckets (CT-Coreset)."""
        buckets = self.active_buckets()
        if not buckets:
            return WeightedPointSet.empty(self._dimension_hint())
        return WeightedPointSet.union_all([b.data for b in buckets])

    def suffix_buckets(self, after: int) -> list[Bucket]:
        """Active buckets whose span starts after base bucket ``after``.

        Used by CC to fetch the coresets covering ``[after + 1, N]`` without
        touching the buckets already summarised by a cached coreset.
        """
        return [b for b in self.active_buckets() if b.start > after]

    def stored_points(self) -> int:
        """Total number of weighted points across all active buckets."""
        return sum(b.size for level in self._levels for b in level)

    def max_level(self) -> int:
        """Highest level that currently holds at least one bucket."""
        highest = 0
        for level, buckets in enumerate(self._levels):
            if buckets:
                highest = level
        return highest

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        """Checkpoint state: every active bucket per level plus the counters."""
        return {
            "merge_degree": self._merge_degree,
            "num_base_buckets": self._num_base_buckets,
            "merge_count": self._merge_count,
            "levels": [
                [bucket.state_dict() for bucket in level] for level in self._levels
            ],
        }

    def load_state(self, state: dict) -> None:
        """Restore the tree from :meth:`state_dict` output (constructor kept)."""
        self._merge_degree = int(state["merge_degree"])
        self._num_base_buckets = int(state["num_base_buckets"])
        self._merge_count = int(state["merge_count"])
        self._levels = [
            [Bucket.from_state(entry) for entry in level] for level in state["levels"]
        ]

    def _ensure_level(self, level: int) -> None:
        while len(self._levels) <= level:
            self._levels.append([])

    def _append_at_level(self, level: int, bucket: Bucket) -> None:
        self._ensure_level(level)
        self._levels[level].append(bucket)

    def _dimension_hint(self) -> int:
        for level in self._levels:
            for bucket in level:
                return bucket.data.dimension
        return 1
