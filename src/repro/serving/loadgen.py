"""Load generation against the serving plane: Poisson/bursty query traffic.

The measurement core behind ``tools/loadgen.py`` and the latency SLO bench
gate.  Two modes share one report format:

* :func:`run_plane_loadgen` — in-process: ``readers`` threads (one
  :class:`~repro.serving.plane.PlaneReader` each) issue queries with
  Poisson inter-arrivals while an :class:`IngestLoop` thread keeps the
  writer plane busy.  This is the pure plane-split measurement (no network,
  no event loop) the bench gate records.
* :func:`run_tcp_loadgen` — over the wire: ``clients`` concurrent asyncio
  connections replay the same arrival process against a
  :class:`~repro.serving.server.ServingServer`, counting sheds (429s) and
  errors along with latency.  This is how thousands of simulated clients
  are cheap: one task per client, not one thread.

Latency is reported as p50/p99/p999 in microseconds; staleness both in
points (ingested but not yet visible in the served snapshot) and in
milliseconds (age of the served snapshot).
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from .plane import ServingPlane, SnapshotUnavailable

__all__ = [
    "LoadgenConfig",
    "LoadReport",
    "IngestLoop",
    "run_plane_loadgen",
    "run_tcp_loadgen",
]


@dataclass(frozen=True)
class LoadgenConfig:
    """One load-generation run.

    Attributes
    ----------
    seconds:
        Wall-clock duration of the run.
    rate:
        Target total query arrivals per second (Poisson process).  ``None``
        runs closed-loop (each client issues its next query immediately).
    ks:
        The ``k`` values clients draw from, uniformly.
    burst:
        Bursty traffic: the arrival rate alternates between
        ``burst_factor * rate`` and ``rate / 4`` every ``burst_period``
        seconds instead of staying constant.
    burst_factor / burst_period:
        Shape of the bursts.
    seed:
        Seed for arrival times and k choices.
    include_centers:
        TCP mode: ask the server to include center coordinates in responses
        (heavier payloads; off by default so latency measures serving, not
        JSON size).
    max_retries:
        TCP mode: retry a query up to this many times when the server sheds
        it (429), with full-jitter exponential backoff.  ``0`` (default)
        keeps the historical behaviour of counting every shed immediately.
        Retried-then-served queries report the full client-perceived span
        (including backoff sleeps) as their latency.
    retry_backoff_s:
        Base of the full-jitter backoff between retries: attempt ``n``
        sleeps ``uniform(0, retry_backoff_s * 2**n)`` (capped at 1s).
    """

    seconds: float = 5.0
    rate: float | None = 200.0
    ks: tuple[int, ...] = (10, 20, 30)
    burst: bool = False
    burst_factor: float = 4.0
    burst_period: float = 1.0
    seed: int = 0
    include_centers: bool = False
    max_retries: int = 0
    retry_backoff_s: float = 0.02


@dataclass
class LoadReport:
    """Aggregated outcome of one load-generation run."""

    issued: int = 0
    served: int = 0
    shed: int = 0
    errors: int = 0
    retries: int = 0
    duration_seconds: float = 0.0
    p50_us: float = 0.0
    p99_us: float = 0.0
    p999_us: float = 0.0
    mean_us: float = 0.0
    staleness_points_mean: float = 0.0
    staleness_points_p99: float = 0.0
    staleness_ms_mean: float = 0.0
    staleness_ms_p99: float = 0.0
    latencies_us: np.ndarray = field(default_factory=lambda: np.empty(0), repr=False)

    @property
    def qps(self) -> float:
        """Served queries per second."""
        return self.served / self.duration_seconds if self.duration_seconds else 0.0

    def as_dict(self) -> dict:
        """JSON-able summary (without the raw latency array)."""
        return {
            "issued": self.issued,
            "served": self.served,
            "shed": self.shed,
            "errors": self.errors,
            "retries": self.retries,
            "qps": self.qps,
            "duration_seconds": self.duration_seconds,
            "p50_us": self.p50_us,
            "p99_us": self.p99_us,
            "p999_us": self.p999_us,
            "mean_us": self.mean_us,
            "staleness_points_mean": self.staleness_points_mean,
            "staleness_points_p99": self.staleness_points_p99,
            "staleness_ms_mean": self.staleness_ms_mean,
            "staleness_ms_p99": self.staleness_ms_p99,
        }

    def summary(self) -> str:
        """Human-readable one-screen report."""
        lines = [
            f"queries : issued={self.issued} served={self.served} "
            f"shed={self.shed} errors={self.errors} retries={self.retries} "
            f"({self.qps:.0f} qps)",
            f"latency : p50={self.p50_us:.0f}us p99={self.p99_us:.0f}us "
            f"p999={self.p999_us:.0f}us mean={self.mean_us:.0f}us",
            f"staleness: mean={self.staleness_points_mean:.0f}pts/"
            f"{self.staleness_ms_mean:.1f}ms "
            f"p99={self.staleness_points_p99:.0f}pts/{self.staleness_ms_p99:.1f}ms",
        ]
        return "\n".join(lines)


@dataclass
class _Samples:
    """One worker's raw measurements (merged lock-free at the end)."""

    latencies: list = field(default_factory=list)
    staleness_points: list = field(default_factory=list)
    staleness_ms: list = field(default_factory=list)
    issued: int = 0
    served: int = 0
    shed: int = 0
    errors: int = 0
    retries: int = 0


def _build_report(samples: list[_Samples], duration: float) -> LoadReport:
    report = LoadReport(duration_seconds=duration)
    latencies: list = []
    stale_pts: list = []
    stale_ms: list = []
    for sample in samples:
        report.issued += sample.issued
        report.served += sample.served
        report.shed += sample.shed
        report.errors += sample.errors
        report.retries += sample.retries
        latencies.extend(sample.latencies)
        stale_pts.extend(sample.staleness_points)
        stale_ms.extend(sample.staleness_ms)
    if latencies:
        arr = np.asarray(latencies) * 1e6
        report.latencies_us = arr
        report.p50_us = float(np.percentile(arr, 50))
        report.p99_us = float(np.percentile(arr, 99))
        report.p999_us = float(np.percentile(arr, 99.9))
        report.mean_us = float(arr.mean())
    if stale_pts:
        pts = np.asarray(stale_pts, dtype=np.float64)
        report.staleness_points_mean = float(pts.mean())
        report.staleness_points_p99 = float(np.percentile(pts, 99))
    if stale_ms:
        ms = np.asarray(stale_ms, dtype=np.float64)
        report.staleness_ms_mean = float(ms.mean())
        report.staleness_ms_p99 = float(np.percentile(ms, 99))
    return report


def _arrival_delay(cfg: LoadgenConfig, per_worker_rate: float | None, elapsed: float,
                   rng: np.random.Generator) -> float:
    """Exponential inter-arrival delay honouring the burst schedule (0 = closed loop)."""
    if per_worker_rate is None or per_worker_rate <= 0:
        return 0.0
    rate = per_worker_rate
    if cfg.burst:
        phase = elapsed % (2.0 * cfg.burst_period)
        rate = rate * cfg.burst_factor if phase < cfg.burst_period else rate / 4.0
    return float(rng.exponential(1.0 / rate))


class IngestLoop(threading.Thread):
    """Writer-plane driver: replays a point set through the plane in a loop.

    Wraps around the array indefinitely (the coreset tree happily absorbs a
    repeating stream), so the publish path stays hot for as long as the
    load run needs.  ``pause`` / ``resume`` gate ingestion without killing
    the thread — the SLO comparison measures read latency in both states.
    """

    def __init__(
        self, plane: ServingPlane, points: np.ndarray, batch_size: int = 500
    ) -> None:
        super().__init__(name="repro-ingest-loop", daemon=True)
        self._plane = plane
        self._points = points
        self._batch_size = batch_size
        self._halt = threading.Event()
        self._go = threading.Event()
        self._go.set()
        self.batches_ingested = 0

    def run(self) -> None:
        """Feed batches while running, blocking while paused."""
        cursor = 0
        n = self._points.shape[0]
        while not self._halt.is_set():
            if not self._go.wait(timeout=0.05):
                continue
            end = min(cursor + self._batch_size, n)
            # Copy: insert_batch zero-copies full buckets, and the loop
            # re-reads the same array on wrap-around.
            self._plane.ingest(self._points[cursor:end].copy())
            self.batches_ingested += 1
            cursor = end % n

    def pause(self) -> None:
        """Stop feeding the plane (the thread stays alive)."""
        self._go.clear()

    def resume(self) -> None:
        """Resume feeding the plane."""
        self._go.set()

    def stop(self) -> None:
        """Terminate the loop and join the thread."""
        self._halt.set()
        self._go.set()
        self.join(timeout=10.0)


def run_plane_loadgen(
    plane: ServingPlane, cfg: LoadgenConfig, readers: int = 4
) -> LoadReport:
    """In-process load run: ``readers`` threads query the plane directly."""
    per_worker = None if cfg.rate is None else cfg.rate / readers
    samples = [_Samples() for _ in range(readers)]
    start = time.monotonic()
    stop_at = start + cfg.seconds

    def worker(index: int) -> None:
        reader = plane.reader(seed=cfg.seed + 1000 * (index + 1))
        rng = np.random.default_rng(cfg.seed + index)
        sink = samples[index]
        while True:
            now = time.monotonic()
            if now >= stop_at:
                return
            delay = _arrival_delay(cfg, per_worker, now - start, rng)
            if delay:
                time.sleep(min(delay, stop_at - now))
                if time.monotonic() >= stop_at:
                    return
            k = int(rng.choice(cfg.ks))
            sink.issued += 1
            begin = time.perf_counter()
            try:
                result = reader.query(k)
            except SnapshotUnavailable:
                sink.errors += 1
                time.sleep(0.01)
                continue
            sink.latencies.append(time.perf_counter() - begin)
            sink.served += 1
            sink.staleness_points.append(result.staleness_points)
            sink.staleness_ms.append(result.staleness_seconds * 1e3)

    threads = [
        threading.Thread(target=worker, args=(index,), daemon=True)
        for index in range(readers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return _build_report(samples, time.monotonic() - start)


async def _tcp_client(
    host: str,
    port: int,
    cfg: LoadgenConfig,
    per_client_rate: float | None,
    start: float,
    stop_at: float,
    sink: _Samples,
    rng: np.random.Generator,
) -> None:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        while True:
            now = time.monotonic()
            if now >= stop_at:
                return
            delay = _arrival_delay(cfg, per_client_rate, now - start, rng)
            if delay:
                await asyncio.sleep(min(delay, stop_at - now))
                if time.monotonic() >= stop_at:
                    return
            k = int(rng.choice(cfg.ks))
            request = {"op": "query", "k": k, "include_centers": cfg.include_centers}
            payload = json.dumps(request).encode() + b"\n"
            sink.issued += 1
            begin = time.perf_counter()
            attempt = 0
            while True:
                writer.write(payload)
                await writer.drain()
                line = await reader.readline()
                elapsed = time.perf_counter() - begin
                if not line:
                    sink.errors += 1
                    return
                response = json.loads(line)
                if response.get("ok"):
                    sink.served += 1
                    sink.latencies.append(elapsed)
                    sink.staleness_points.append(response.get("staleness_points", 0))
                    sink.staleness_ms.append(
                        response.get("staleness_seconds", 0.0) * 1e3
                    )
                elif response.get("code") == 429:
                    # Only sheds are retried: they are the one transient
                    # outcome the protocol promises may succeed on re-send.
                    if attempt < cfg.max_retries and time.monotonic() < stop_at:
                        sink.retries += 1
                        attempt += 1
                        ceiling = min(1.0, cfg.retry_backoff_s * (2.0 ** attempt))
                        await asyncio.sleep(float(rng.uniform(0.0, ceiling)))
                        continue
                    sink.shed += 1
                else:
                    sink.errors += 1
                break
    finally:
        writer.close()


async def _tcp_run(host: str, port: int, cfg: LoadgenConfig, clients: int) -> LoadReport:
    per_client = None if cfg.rate is None else cfg.rate / clients
    samples = [_Samples() for _ in range(clients)]
    start = time.monotonic()
    stop_at = start + cfg.seconds
    tasks = [
        _tcp_client(
            host,
            port,
            cfg,
            per_client,
            start,
            stop_at,
            samples[index],
            np.random.default_rng(cfg.seed + index),
        )
        for index in range(clients)
    ]
    outcomes = await asyncio.gather(*tasks, return_exceptions=True)
    for index, outcome in enumerate(outcomes):
        if isinstance(outcome, Exception):
            samples[index].errors += 1
    return _build_report(samples, time.monotonic() - start)


def run_tcp_loadgen(
    host: str, port: int, cfg: LoadgenConfig, clients: int = 100
) -> LoadReport:
    """Network load run: ``clients`` concurrent connections against a server."""
    return asyncio.run(_tcp_run(host, port, cfg, clients))
