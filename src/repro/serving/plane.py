"""The plane split: a locked ingest writer and lock-free snapshot readers.

:class:`ServingPlane` wraps any coreset-backed clusterer (a
:class:`~repro.core.driver.StreamClusterDriver` or a
:class:`~repro.parallel.engine.ShardedEngine`) and separates its two roles:

* :meth:`ServingPlane.ingest` runs on the writer under the ingest lock and,
  after the batch settles, assembles the query coreset **on the ingest
  thread** (``query_coreset`` legitimately mutates CC/RCC caches, so coreset
  assembly can never move to a reader) and publishes it as an immutable
  :class:`~repro.serving.snapshot.CoresetSnapshot`.
* :meth:`ServingPlane.reader` hands out :class:`PlaneReader` objects — one
  per serving thread.  A reader owns a private warm-start
  :class:`~repro.queries.serving.QueryEngine` (warm state is mutable, so it
  is never shared) and a private RNG; its queries load
  ``publisher.latest`` once and solve on that snapshot without ever touching
  the ingest lock.

A restored plane (:meth:`ServingPlane.restore`) republishes immediately, so
readers serve the checkpointed stream position before any new point arrives.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from ..core.serving_mixin import CoresetServingMixin
from .snapshot import CoresetSnapshot, SnapshotPublisher

__all__ = ["ServingPlane", "PlaneReader", "ServedResult", "SnapshotUnavailable"]


class SnapshotUnavailable(RuntimeError):
    """Raised by readers when no snapshot has been published yet."""


@dataclass(frozen=True)
class ServedResult:
    """One query answered from a published snapshot.

    Attributes
    ----------
    k:
        Number of centers requested.
    centers:
        Array of shape ``(k, d)``.
    cost:
        Weighted k-means cost of the centers on the snapshot's coreset.
    version:
        Version of the snapshot the answer was computed from.
    snapshot_points:
        Stream position the snapshot summarises.
    staleness_points:
        Points ingested by the writer but not yet visible in the served
        snapshot, sampled when the query started.
    staleness_seconds:
        Age of the served snapshot when newer points exist (0.0 when the
        snapshot is current).
    warm_start:
        True when the reader's warm-start Lloyd descent alone produced the
        answer.
    coreset_points:
        Weighted points the solver ran on.
    solve_seconds:
        Wall-clock of the solve (the reader pays no assembly cost — the
        coreset was assembled at publish time).
    """

    k: int
    centers: np.ndarray
    cost: float
    version: int
    snapshot_points: int
    staleness_points: int
    staleness_seconds: float
    warm_start: bool
    coreset_points: int
    solve_seconds: float


class ServingPlane:
    """Writer-side coordinator: serialized ingest, RCU snapshot publication.

    Parameters
    ----------
    clusterer:
        Any coreset-backed clusterer (CT/CC/RCC driver or sharded engine).
    auto_publish:
        Publish a fresh snapshot after every :meth:`ingest` call (default).
        With ``False`` the caller controls publication cadence via
        :meth:`publish` — e.g. one publish per N batches to trade staleness
        for publish cost.
    """

    def __init__(self, clusterer: CoresetServingMixin, auto_publish: bool = True) -> None:
        if not isinstance(clusterer, CoresetServingMixin):
            raise TypeError(
                "ServingPlane requires a coreset-backed clusterer "
                f"(CoresetServingMixin), got {type(clusterer).__name__}"
            )
        self._clusterer = clusterer
        self._auto_publish = auto_publish
        self._ingest_lock = threading.Lock()
        self._publisher = SnapshotPublisher()
        # Deterministic per-reader seed stream: readers created in the same
        # order on two identical planes draw identical randomness.
        self._reader_seeds = np.random.SeedSequence(clusterer.config.seed)
        self._readers_created = 0
        # Stream position of the wrapped clusterer's last coreset assembly.
        # Tracked per clusterer (reset by adopt) so the publish dedupe never
        # skips an assembly the recovery-equivalence contract requires.
        self._published_points: int | None = None
        if clusterer.points_seen > 0:
            # Wrapping a clusterer that already holds stream state (warm
            # construction or a checkpoint restore): publish immediately so
            # readers can serve before the next batch arrives.
            self.publish()

    # -- introspection -------------------------------------------------------

    @property
    def clusterer(self) -> CoresetServingMixin:
        """The wrapped clusterer (writer-plane use only)."""
        return self._clusterer

    @property
    def config(self):
        """The clusterer's :class:`~repro.core.base.StreamingConfig`."""
        return self._clusterer.config

    @property
    def publisher(self) -> SnapshotPublisher:
        """The snapshot publication cell readers load from."""
        return self._publisher

    @property
    def version(self) -> int:
        """Version of the most recently published snapshot (0 before one)."""
        return self._publisher.version

    @property
    def points_ingested(self) -> int:
        """Stream position of the writer (may be ahead of the snapshot)."""
        return self._clusterer.points_seen

    def staleness(self) -> tuple[int, float]:
        """Current ``(points, seconds)`` lag of the published snapshot."""
        snapshot = self._publisher.latest
        if snapshot is None:
            return self._clusterer.points_seen, 0.0
        behind = self._clusterer.points_seen - snapshot.points_seen
        seconds = time.monotonic() - snapshot.published_at if behind > 0 else 0.0
        return behind, seconds

    def snapshot_age(self) -> float:
        """Wall-clock seconds since the latest snapshot was published.

        Unlike :meth:`staleness` — which reports 0.0 whenever the writer has
        nothing newer, so a *dead* writer looks perfectly current — this is
        the raw age of what readers are serving.  It is the signal the
        staleness ceiling in degraded mode keys on.  ``inf`` before the
        first publication.
        """
        snapshot = self._publisher.latest
        if snapshot is None:
            return float("inf")
        return time.monotonic() - snapshot.published_at

    # -- writer plane --------------------------------------------------------

    def ingest(self, points: np.ndarray) -> CoresetSnapshot | None:
        """Insert a batch and (by default) publish the settled snapshot.

        Returns the snapshot published for this batch, or ``None`` when
        ``auto_publish`` is off or no point has arrived yet.
        """
        with self._ingest_lock:
            self._clusterer.insert_batch(points)
            if self._auto_publish:
                return self._publish_locked()
        return None

    def publish(self) -> CoresetSnapshot | None:
        """Assemble and publish a snapshot of the current stream position.

        No-op (returns ``None``) before the first point: there is nothing a
        reader could solve on.
        """
        with self._ingest_lock:
            return self._publish_locked()

    def reshard(self, new_num_shards: int):
        """Reshard the wrapped engine in place without dropping readers.

        Takes the ingest lock for the duration of the quiesce so no batch
        races the backend teardown, then republishes.  The redistributed
        union coreset represents the same stream position, so readers see
        either the pre- or post-reshard snapshot — both summarise identical
        data — and never an intermediate state.  Only sharded engines
        expose :meth:`~repro.parallel.engine.ShardedEngine.reshard`; other
        clusterers raise ``TypeError``.
        """
        resharder = getattr(self._clusterer, "reshard", None)
        if resharder is None:
            raise TypeError(
                f"{type(self._clusterer).__name__} does not support resharding; "
                "wrap a ShardedEngine to use ServingPlane.reshard"
            )
        with self._ingest_lock:
            report = resharder(int(new_num_shards))
            self._publish_locked()
        return report

    def adopt(self, clusterer: CoresetServingMixin) -> None:
        """Swap in a replacement clusterer (crash recovery) without publishing.

        The supervisor's seam: after a writer crash it restores a fresh
        clusterer from the last good checkpoint and adopts it here, so the
        plane object — and every server/reader holding it — survives the
        incident.  Readers keep answering from the last published snapshot;
        the adopted instance's own ingests publish as soon as they *reach*
        that position (publication is monotonic in stream position, so a
        mid-replay plane never serves older data than it already has).  No
        coreset is assembled here: the checkpointed state already reflects
        an assembly at its position, and an extra one would break the
        bit-identical recovery-equivalence contract.  The replaced
        clusterer is closed best-effort (its workers may already be dead).
        """
        if not isinstance(clusterer, CoresetServingMixin):
            raise TypeError(
                "ServingPlane.adopt requires a coreset-backed clusterer "
                f"(CoresetServingMixin), got {type(clusterer).__name__}"
            )
        with self._ingest_lock:
            retired = self._clusterer
            self._clusterer = clusterer
            self._published_points = None
        if retired is not clusterer:
            closer = getattr(retired, "close", None)
            if closer is not None:
                try:
                    closer()
                except Exception:  # noqa: BLE001 - the old engine may be half-dead
                    pass

    def _publish_locked(self) -> CoresetSnapshot | None:
        points = self._clusterer.points_seen
        if points == 0:
            return None
        latest = self._publisher.latest
        if self._published_points == points and latest is not None:
            # Nothing settled since the last assembly; keep the version (and
            # the readers' warm caches) stable instead of re-assembling.
            return latest
        coreset, cache_stats = self._clusterer.collect_serving_snapshot()
        self._published_points = points
        if latest is not None and points < latest.points_seen:
            # A recovering writer replaying the journal behind the last
            # pre-crash publication: the assembly ran (the clusterer's state
            # evolution must match an uninterrupted run exactly), but the
            # publisher keeps the newer snapshot — readers never see stream
            # position go backwards.
            return None
        dimension = self._clusterer.dimension or int(coreset.points.shape[1])
        return self._publisher.publish(
            coreset,
            points_seen=points,
            dimension=dimension,
            cache_stats=cache_stats,
        )

    # -- reader plane --------------------------------------------------------

    def reader(self, seed: int | None = None) -> "PlaneReader":
        """Create a reader with private warm-start state and randomness.

        ``seed`` pins the reader's RNG for deterministic replay; by default
        each reader draws the next child of the plane's seed sequence, so
        reader ``i`` of two identical planes is identically seeded.
        """
        with self._ingest_lock:
            if seed is None:
                # spawn() is stateful: each call yields the next child, so
                # reader i always gets child i regardless of interleaving.
                rng = np.random.default_rng(self._reader_seeds.spawn(1)[0])
            else:
                rng = np.random.default_rng(seed)
            self._readers_created += 1
        return PlaneReader(self, rng)

    # -- lifecycle / checkpointing -------------------------------------------

    def close(self) -> None:
        """Close the wrapped clusterer (sharded engines tear down workers)."""
        closer = getattr(self._clusterer, "close", None)
        if closer is not None:
            closer()

    def __enter__(self) -> "ServingPlane":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def snapshot(self, path: str | Path, annotations: dict | None = None) -> Path:
        """Checkpoint the wrapped clusterer at a quiesced stream position."""
        with self._ingest_lock:
            return self._clusterer.snapshot(path, annotations=annotations)

    @classmethod
    def restore(cls, path: str | Path, auto_publish: bool = True, **overrides) -> "ServingPlane":
        """Rebuild a plane from a checkpoint and republish immediately.

        ``overrides`` pass through to the checkpoint restore (e.g.
        ``backend="thread"`` for a sharded engine).  The restored plane's
        first published version is 1 — snapshot versions are a property of
        the serving session, not of the stream.
        """
        from ..checkpoint import load_checkpoint

        clusterer = load_checkpoint(path, **overrides)
        if not isinstance(clusterer, CoresetServingMixin):
            closer = getattr(clusterer, "close", None)
            if closer is not None:
                closer()
            raise TypeError(
                f"checkpoint at {path} holds a {type(clusterer).__name__}, "
                "which cannot serve through a ServingPlane"
            )
        return cls(clusterer, auto_publish=auto_publish)


class PlaneReader:
    """One serving thread's handle: private engine, private RNG, no locks.

    Not thread-safe — the whole point is that each serving thread owns one
    reader.  Create as many readers as there are threads.
    """

    def __init__(self, plane: ServingPlane, rng: np.random.Generator) -> None:
        self._plane = plane
        self._engine = plane.clusterer.query_engine.fork()
        self._rng = rng
        self._last_version = 0
        self._queries_served = 0

    @property
    def engine(self):
        """This reader's private warm-start engine (counters included)."""
        return self._engine

    @property
    def last_version(self) -> int:
        """Snapshot version of the most recent query (0 before one)."""
        return self._last_version

    @property
    def queries_served(self) -> int:
        """Queries this reader has answered."""
        return self._queries_served

    def _load_snapshot(self) -> CoresetSnapshot:
        snapshot = self._plane.publisher.latest
        if snapshot is None:
            raise SnapshotUnavailable(
                "no snapshot published yet: ingest at least one point first"
            )
        return snapshot

    def _staleness(self, snapshot: CoresetSnapshot) -> tuple[int, float]:
        # points_ingested is read *after* the snapshot reference, and the
        # writer's counter only grows, so the lag is never negative.
        behind = self._plane.points_ingested - snapshot.points_seen
        seconds = time.monotonic() - snapshot.published_at if behind > 0 else 0.0
        return behind, seconds

    def query(self, k: int | None = None) -> ServedResult:
        """Answer one query from the latest published snapshot."""
        snapshot = self._load_snapshot()
        k = int(k) if k is not None else self._plane.config.k
        behind, seconds = self._staleness(snapshot)
        start = time.perf_counter()
        solution = self._engine.solve(snapshot.coreset, k, self._rng)
        solve_seconds = time.perf_counter() - start
        self._last_version = snapshot.version
        self._queries_served += 1
        return ServedResult(
            k=k,
            centers=solution.centers,
            cost=solution.cost,
            version=snapshot.version,
            snapshot_points=snapshot.points_seen,
            staleness_points=behind,
            staleness_seconds=seconds,
            warm_start=solution.warm_start,
            coreset_points=snapshot.size,
            solve_seconds=solve_seconds,
        )

    def query_multi_k(self, ks: Sequence[int]) -> dict[int, ServedResult]:
        """Answer a batched k-sweep — every ``k`` from the SAME snapshot.

        This is the server's coalescing primitive: requests batched into one
        sweep are guaranteed a mutually consistent view of the stream.
        """
        snapshot = self._load_snapshot()
        behind, seconds = self._staleness(snapshot)
        start = time.perf_counter()
        solutions = self._engine.solve_multi(
            snapshot.coreset, tuple(int(k) for k in ks), self._rng
        )
        solve_seconds = (time.perf_counter() - start) / max(len(solutions), 1)
        self._last_version = snapshot.version
        self._queries_served += len(solutions)
        return {
            k: ServedResult(
                k=k,
                centers=solution.centers,
                cost=solution.cost,
                version=snapshot.version,
                snapshot_points=snapshot.points_seen,
                staleness_points=behind,
                staleness_seconds=seconds,
                warm_start=solution.warm_start,
                coreset_points=snapshot.size,
                solve_seconds=solve_seconds,
            )
            for k, solution in solutions.items()
        }
