"""The asyncio query front end: JSON over TCP, batching, admission, drain.

:class:`ServingServer` puts a thin network face on a
:class:`~repro.serving.plane.ServingPlane`.  Protocol: newline-delimited
JSON requests over TCP (see ``docs/serving.md`` for the full spec)::

    {"op": "query", "k": 20}
    {"op": "query_multi_k", "ks": [10, 20, 30]}
    {"op": "ping"}   {"op": "stats"}

Design points, each of which the fault-injection battery exercises:

* **Admission control** — requests beyond ``max_pending`` queued solves are
  shed immediately with the documented overload error
  (``{"ok": false, "code": 429, "error": "overloaded"}``) instead of
  building an unbounded backlog.
* **Query batching** — each worker drains whatever compatible requests are
  already queued (up to ``batch_limit``) and folds their ``k`` values into
  ONE :meth:`~repro.serving.plane.PlaneReader.query_multi_k` sweep, so a
  k-sweep window of requests costs one coreset-norms pass and every
  response in the batch reflects the *same* snapshot version.
* **Per-reader state** — each worker owns a private
  :class:`~repro.serving.plane.PlaneReader` (warm-start state is mutable),
  and runs its solves in the executor so the event loop never blocks.
* **Slow-client isolation** — every response write is bounded by
  ``write_timeout_s``; a client that stops reading gets its connection
  aborted without affecting any other connection.
* **Graceful drain** — :meth:`ServingServer.stop` stops accepting, answers
  every in-flight query, then closes connections.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
from dataclasses import dataclass, field
from typing import Callable, Sequence

from .plane import PlaneReader, ServedResult, ServingPlane, SnapshotUnavailable

__all__ = ["ServingServer", "ServerThread", "ServerStats"]

#: Max request line length (a k-sweep request is tiny; 1 MiB is generous).
_LINE_LIMIT = 1 << 20


class _SlowClientError(Exception):
    """Internal: a response write exceeded the write timeout."""


@dataclass
class ServerStats:
    """Monotonic counters exposed by the ``stats`` op."""

    served: int = 0
    batched: int = 0
    shed: int = 0
    stale_rejections: int = 0
    degraded_served: int = 0
    bad_requests: int = 0
    internal_errors: int = 0
    slow_client_disconnects: int = 0
    connections: int = 0

    def as_dict(self) -> dict:
        """Counters as a plain dict (the ``stats`` op's payload)."""
        return dict(vars(self))


@dataclass
class _Job:
    """One admitted query awaiting a worker."""

    ks: tuple[int, ...]
    multi: bool
    include_centers: bool
    future: asyncio.Future = field(repr=False)


class ServingServer:
    """Asyncio TCP front end over one serving plane.

    Parameters
    ----------
    plane:
        The serving plane to answer from.
    host / port:
        Bind address; port 0 picks a free port (read :attr:`port` after
        :meth:`start`).
    num_workers:
        Reader workers (one private :class:`PlaneReader` each).
    max_pending:
        Admission bound: requests arriving while this many jobs are queued
        are shed with the 429 overload error.
    batch_limit:
        Max requests one worker folds into a single ``query_multi_k`` sweep.
    write_timeout_s:
        Per-response write budget; a client that cannot absorb a response
        within it is disconnected (others are unaffected).
    reader_factory:
        Test hook (the ``shard_factory`` pattern): builds each worker's
        reader; defaults to :meth:`ServingPlane.reader`.
    sndbuf:
        Optional SO_SNDBUF size for accepted sockets — small values make
        the write timeout observable in tests; leave ``None`` in production.
    staleness_ceiling_s:
        Degraded-mode bound: once the published snapshot is older than this
        many seconds (a dead or wedged writer — see
        :meth:`ServingPlane.snapshot_age`), queries are refused with a 503
        ``stale`` error instead of silently serving arbitrarily old answers.
        ``None`` (default) serves stale data forever, annotated.
    health_source:
        Callable returning the ingest pipeline's health state (one of
        ``live / degraded / recovering / down`` — the supervisor wires its
        :class:`~repro.resilience.supervisor.HealthState` in here).  Drives
        the ``health`` op and the per-response ``degraded`` annotation;
        ``None`` reports ``live`` whenever a snapshot exists.
    """

    def __init__(
        self,
        plane: ServingPlane,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        num_workers: int = 2,
        max_pending: int = 64,
        batch_limit: int = 8,
        write_timeout_s: float = 5.0,
        reader_factory: Callable[[ServingPlane], PlaneReader] | None = None,
        sndbuf: int | None = None,
        staleness_ceiling_s: float | None = None,
        health_source: Callable[[], str] | None = None,
    ) -> None:
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if max_pending <= 0:
            raise ValueError("max_pending must be positive")
        if batch_limit <= 0:
            raise ValueError("batch_limit must be positive")
        self._plane = plane
        self._host = host
        self._requested_port = port
        self._num_workers = num_workers
        self._max_pending = max_pending
        self._batch_limit = batch_limit
        self._write_timeout_s = write_timeout_s
        self._reader_factory = reader_factory or (lambda p: p.reader())
        self._sndbuf = sndbuf
        if staleness_ceiling_s is not None and staleness_ceiling_s <= 0:
            raise ValueError("staleness_ceiling_s must be positive (or None)")
        self._staleness_ceiling_s = staleness_ceiling_s
        self._health_source = health_source
        self.stats = ServerStats()
        self._queue: asyncio.Queue[_Job] | None = None
        self._server: asyncio.base_events.Server | None = None
        self._workers: list[asyncio.Task] = []
        self._connections: set[asyncio.StreamWriter] = set()
        self._draining = False
        self._inflight = 0

    # -- lifecycle -----------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (valid after :meth:`start`)."""
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    @property
    def draining(self) -> bool:
        """True once :meth:`stop` has begun."""
        return self._draining

    async def start(self) -> "ServingServer":
        """Bind the listener and spawn the reader workers."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._queue = asyncio.Queue()
        self._workers = [
            asyncio.ensure_future(self._worker()) for _ in range(self._num_workers)
        ]
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self._host,
            port=self._requested_port,
            limit=_LINE_LIMIT,
        )
        return self

    async def serve_forever(self) -> None:
        """Serve until cancelled (call :meth:`start` first)."""
        assert self._server is not None
        await self._server.serve_forever()

    async def stop(self, drain: bool = True, timeout: float = 10.0) -> None:
        """Graceful shutdown: stop accepting, drain in-flight, close.

        With ``drain`` every admitted query is answered (and its response
        flushed) before connections close; without it queued work is
        abandoned.  ``timeout`` bounds the drain wait.
        """
        if self._server is None:
            return
        self._draining = True
        self._server.close()
        await self._server.wait_closed()
        if drain and self._queue is not None:
            loop = asyncio.get_running_loop()
            deadline = loop.time() + timeout
            try:
                await asyncio.wait_for(
                    self._queue.join(), max(deadline - loop.time(), 0.001)
                )
            except asyncio.TimeoutError:
                pass
            # Responses are written by the connection handlers after their
            # futures resolve; wait for those flushes too.
            while self._inflight > 0 and loop.time() < deadline:
                await asyncio.sleep(0.005)
        for worker in self._workers:
            worker.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        for writer in list(self._connections):
            writer.close()

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._sndbuf is not None:
            sock = writer.get_extra_info("socket")
            if sock is not None:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, self._sndbuf)
            writer.transport.set_write_buffer_limits(high=self._sndbuf)
        self.stats.connections += 1
        self._connections.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    # Oversized line: the stream cannot be resynchronised.
                    await self._send(
                        writer,
                        _error(400, f"request line exceeds {_LINE_LIMIT} bytes"),
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                response = await self._dispatch(line)
                await self._send(writer, response)
        except (
            _SlowClientError,
            ConnectionResetError,
            BrokenPipeError,
            asyncio.CancelledError,
        ):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()

    async def _send(self, writer: asyncio.StreamWriter, response: dict) -> None:
        writer.write(json.dumps(response, separators=(",", ":")).encode() + b"\n")
        try:
            await asyncio.wait_for(writer.drain(), self._write_timeout_s)
        except asyncio.TimeoutError:
            # This client stopped reading; abort it without touching others.
            self.stats.slow_client_disconnects += 1
            writer.transport.abort()
            raise _SlowClientError from None

    # -- health / degraded mode ----------------------------------------------

    def _health_state(self) -> str:
        """The ingest pipeline's health label (lower-case)."""
        if self._health_source is not None:
            return str(self._health_source()).lower()
        return "live" if self._plane.publisher.latest is not None else "down"

    def _health_payload(self) -> dict:
        """Payload of the ``health`` op (also the CLI health probe's output)."""
        state = self._health_state()
        age = self._plane.snapshot_age()
        behind, _ = self._plane.staleness()
        return {
            "ok": True,
            "op": "health",
            "state": state,
            "degraded": state != "live",
            "version": self._plane.version,
            "points_ingested": self._plane.points_ingested,
            "staleness_points": behind,
            "snapshot_age_s": round(age, 3) if age != float("inf") else None,
            "staleness_ceiling_s": self._staleness_ceiling_s,
        }

    def _annotate_degraded(self, response: dict) -> dict:
        """Stamp a successful answer served while ingest is not LIVE.

        Copies the response first: worker results and error objects are
        shared across every job folded into one batch.
        """
        state = self._health_state()
        if not response.get("ok") or state == "live":
            return response
        self.stats.degraded_served += 1
        annotated = dict(response)
        annotated["degraded"] = True
        annotated["health"] = state
        age = self._plane.snapshot_age()
        annotated["snapshot_age_s"] = round(age, 3) if age != float("inf") else None
        return annotated

    # -- request dispatch ----------------------------------------------------

    async def _dispatch(self, line: bytes) -> dict:
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            self.stats.bad_requests += 1
            return _error(400, f"malformed request: {exc.msg}")
        if not isinstance(request, dict):
            self.stats.bad_requests += 1
            return _error(400, "malformed request: expected a JSON object")

        op = request.get("op", "query")
        if op == "ping":
            return {"ok": True, "op": "ping"}
        if op == "health":
            return self._health_payload()
        if op == "stats":
            behind, seconds = self._plane.staleness()
            return {
                "ok": True,
                "op": "stats",
                "version": self._plane.version,
                "points_ingested": self._plane.points_ingested,
                "staleness_points": behind,
                "staleness_seconds": seconds,
                "stats": self.stats.as_dict(),
            }
        if op not in ("query", "query_multi_k"):
            self.stats.bad_requests += 1
            return _error(400, f"unknown op {op!r}")

        try:
            ks, multi = _parse_ks(request, op, default_k=self._plane.config.k)
        except ValueError as exc:
            self.stats.bad_requests += 1
            return _error(400, str(exc))

        if self._draining:
            return _error(503, "draining: server is shutting down")
        if self._staleness_ceiling_s is not None:
            age = self._plane.snapshot_age()
            if age > self._staleness_ceiling_s:
                self.stats.stale_rejections += 1
                return _error(
                    503,
                    "stale: published snapshot is "
                    f"{'unavailable' if age == float('inf') else f'{age:.1f}s old'}, "
                    f"ceiling is {self._staleness_ceiling_s:.1f}s",
                )
        assert self._queue is not None
        if self._queue.qsize() >= self._max_pending:
            self.stats.shed += 1
            return _error(429, "overloaded: admission queue is full, retry later")

        job = _Job(
            ks=ks,
            multi=multi,
            include_centers=bool(request.get("include_centers", True)),
            future=asyncio.get_running_loop().create_future(),
        )
        self._inflight += 1
        try:
            self._queue.put_nowait(job)
            return self._annotate_degraded(await job.future)
        finally:
            self._inflight -= 1

    # -- workers -------------------------------------------------------------

    async def _worker(self) -> None:
        reader = self._reader_factory(self._plane)
        loop = asyncio.get_running_loop()
        assert self._queue is not None
        while True:
            jobs = [await self._queue.get()]
            while len(jobs) < self._batch_limit:
                try:
                    jobs.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            ks = sorted({k for job in jobs for k in job.ks})
            try:
                results = await loop.run_in_executor(None, reader.query_multi_k, ks)
            except SnapshotUnavailable as exc:
                self._resolve(jobs, _error(503, str(exc)))
            except Exception as exc:  # noqa: BLE001 - the server must survive
                self.stats.internal_errors += 1
                self._resolve(jobs, _error(500, f"internal error: {type(exc).__name__}: {exc}"))
            else:
                self.stats.served += len(jobs)
                if len(jobs) > 1:
                    self.stats.batched += len(jobs)
                for job in jobs:
                    self._resolve([job], _format_response(job, results, len(jobs)))

    def _resolve(self, jobs: list[_Job], response: dict) -> None:
        assert self._queue is not None
        for job in jobs:
            if not job.future.done():
                job.future.set_result(response)
            self._queue.task_done()


def _error(code: int, message: str) -> dict:
    return {"ok": False, "code": code, "error": message}


def _parse_ks(request: dict, op: str, default_k: int) -> tuple[tuple[int, ...], bool]:
    """Validate and normalise the requested k values; raises ValueError."""
    if op == "query":
        k = request.get("k", default_k)
        if not isinstance(k, int) or isinstance(k, bool) or k <= 0:
            raise ValueError(f"k must be a positive integer, got {k!r}")
        return (k,), False
    ks = request.get("ks")
    if not isinstance(ks, list) or not ks:
        raise ValueError("ks must be a non-empty list of positive integers")
    for k in ks:
        if not isinstance(k, int) or isinstance(k, bool) or k <= 0:
            raise ValueError(f"ks must contain positive integers, got {k!r}")
    return tuple(dict.fromkeys(ks)), True


def _result_payload(result: ServedResult, include_centers: bool) -> dict:
    payload = {
        "k": result.k,
        "cost": result.cost,
        "version": result.version,
        "snapshot_points": result.snapshot_points,
        "staleness_points": result.staleness_points,
        "staleness_seconds": result.staleness_seconds,
        "warm_start": result.warm_start,
        "coreset_points": result.coreset_points,
    }
    if include_centers:
        payload["centers"] = result.centers.tolist()
    return payload


def _format_response(job: _Job, results: dict[int, ServedResult], batch: int) -> dict:
    if job.multi:
        return {
            "ok": True,
            "op": "query_multi_k",
            "batched": batch,
            "results": {
                str(k): _result_payload(results[k], job.include_centers) for k in job.ks
            },
        }
    result = results[job.ks[0]]
    return {
        "ok": True,
        "op": "query",
        "batched": batch,
        **_result_payload(result, job.include_centers),
    }


class ServerThread:
    """Run a :class:`ServingServer` on a private event loop in a daemon thread.

    The blocking-world adapter used by ``repro serve``, ``tools/loadgen.py``
    and the tests: construct, read :attr:`port`, serve traffic, then
    :meth:`stop`.
    """

    def __init__(self, plane: ServingPlane, **server_kwargs) -> None:
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self.server = ServingServer(plane, **server_kwargs)
        self._thread = threading.Thread(
            target=self._run, name="repro-serving-server", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=10.0)
        if self._startup_error is not None:
            raise self._startup_error

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.server.start())
        except BaseException as exc:  # noqa: BLE001 - reported to the creator
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.close()

    @property
    def port(self) -> int:
        """The server's bound port."""
        return self.server.port

    def stop(self, drain: bool = True, timeout: float = 10.0) -> None:
        """Drain and stop the server, then join the loop thread."""
        if not self._thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(
            self.server.stop(drain=drain, timeout=timeout), self._loop
        )
        try:
            future.result(timeout=timeout + 5.0)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "ServerThread":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
