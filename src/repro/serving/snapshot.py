"""RCU-style publication of immutable, versioned coreset snapshots.

The ingest plane summarises the stream into a coreset; the reader plane
solves k-means on it.  The only state the two planes share is one reference:
:attr:`SnapshotPublisher.latest`.  Publication follows the classic
read-copy-update discipline, leaning on CPython's memory model:

* the writer builds a fully-formed immutable :class:`CoresetSnapshot` and
  then *swaps one attribute reference* — an operation the GIL makes atomic,
  so a reader loading ``publisher.latest`` always observes either the old
  snapshot or the new one, never a torn mix;
* readers never take a lock: they load the reference once per query and keep
  the snapshot alive simply by holding it;
* a replaced snapshot *retires* — the publisher only keeps a weak reference
  to it, so the moment the last reader drops theirs the garbage collector
  reclaims it.  :meth:`SnapshotPublisher.live_retired` counts retired
  snapshots still alive, which is exactly the leak-accounting hook the soak
  tests assert on.

Snapshot versions increase monotonically, so any reader observing versions
``v1 <= v2 <= ...`` across queries is guaranteed a consistent
(prefix-ordered) view of the stream.
"""

from __future__ import annotations

import threading
import time
import weakref
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..coreset.bucket import WeightedPointSet

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..core.cache import CacheStats

__all__ = ["CoresetSnapshot", "SnapshotPublisher", "freeze_pointset"]


def _read_only(arr: np.ndarray) -> np.ndarray:
    """A read-only O(1) view of ``arr`` (the base array stays writeable)."""
    view = arr.view()
    view.setflags(write=False)
    return view


def freeze_pointset(data: WeightedPointSet) -> WeightedPointSet:
    """Re-wrap a weighted point set with read-only array views.

    Published snapshots are shared by every reader thread; freezing the
    views turns any accidental in-place mutation into an immediate
    ``ValueError`` instead of a cross-thread data race.  The underlying
    buffers are not copied (``coerce_storage`` passes float arrays through
    zero-copy) and the writer's own arrays stay writeable.
    """
    return WeightedPointSet(
        points=_read_only(data.points),
        weights=_read_only(data.weights),
        sketch=None if data.sketch is None else _read_only(data.sketch),
    )


@dataclass(frozen=True)
class CoresetSnapshot:
    """One immutable published view of the stream, served lock-free.

    Attributes
    ----------
    version:
        Monotonically increasing publication counter (1 for the first
        publish after construction or restore).
    coreset:
        The assembled query coreset (structure coreset ∪ partial bucket for
        a driver; union of per-shard coresets for a sharded engine), with
        read-only array views.
    points_seen:
        Stream position this snapshot summarises — queries served from it
        reflect exactly the first ``points_seen`` points.
    dimension:
        Stream dimensionality.
    published_at:
        ``time.monotonic()`` at publication, for staleness accounting.
    cache_stats:
        Coreset-cache counters of the backing structure at publication
        (``None`` for cache-less structures).
    """

    version: int
    coreset: WeightedPointSet
    points_seen: int
    dimension: int
    published_at: float
    cache_stats: "CacheStats | None" = None

    @property
    def size(self) -> int:
        """Number of weighted points in the snapshot's coreset."""
        return self.coreset.size


@dataclass
class SnapshotPublisher:
    """The single shared cell between the ingest plane and all readers.

    Only one thread publishes (the plane's ingest lock enforces that); any
    number of threads read :attr:`latest` concurrently without
    synchronisation.  ``_retired`` holds weak references to superseded
    snapshots purely for leak accounting — the publisher never extends a
    retired snapshot's lifetime.
    """

    _latest: CoresetSnapshot | None = None
    _version: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock)
    _retired: list = field(default_factory=list)
    _subscribers: list = field(default_factory=list)

    @property
    def latest(self) -> CoresetSnapshot | None:
        """The current snapshot (lock-free single reference load)."""
        return self._latest

    @property
    def version(self) -> int:
        """Version of the most recent publication (0 before the first)."""
        return self._version

    def subscribe(self, callback: Callable[[CoresetSnapshot], None]) -> None:
        """Register a callback invoked (on the writer thread) at each publish.

        Test hook: the linearizability battery subscribes to retain every
        published version for replay.  Callbacks run under the publish lock,
        so they must be fast and must not publish reentrantly.
        """
        self._subscribers.append(callback)

    def publish(
        self,
        coreset: WeightedPointSet,
        points_seen: int,
        dimension: int,
        cache_stats: "CacheStats | None" = None,
    ) -> CoresetSnapshot:
        """Publish a new snapshot, retiring the previous one.

        Called only by the writer.  The snapshot is fully constructed (and
        frozen) *before* the single reference swap, so concurrent readers
        can never observe a partially built snapshot.
        """
        with self._lock:
            previous = self._latest
            self._version += 1
            snapshot = CoresetSnapshot(
                version=self._version,
                coreset=freeze_pointset(coreset),
                points_seen=points_seen,
                dimension=dimension,
                published_at=time.monotonic(),
                cache_stats=cache_stats,
            )
            # The RCU swap: one GIL-atomic attribute store.  Everything a
            # reader can reach from the new reference is already immutable.
            self._latest = snapshot
            if previous is not None:
                self._retired.append(weakref.ref(previous))
                if len(self._retired) > 256:
                    self._retired = [ref for ref in self._retired if ref() is not None]
            for callback in self._subscribers:
                callback(snapshot)
            return snapshot

    def live_retired(self) -> int:
        """Number of *retired* snapshots still reachable somewhere.

        Zero means every superseded snapshot has been reclaimed — the
        invariant the soak test asserts after readers drop their references
        (run ``gc.collect()`` first; reference cycles through numpy views
        may need a collection pass).
        """
        return sum(1 for ref in self._retired if ref() is not None)
