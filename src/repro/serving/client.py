"""A small blocking client for the serving protocol (tests, CLI probes).

One connection, synchronous request/response over newline-delimited JSON,
with production-client semantics layered on top:

* **per-request deadlines** — every request is bounded by ``deadline_s``
  (overridable per call); an exhausted deadline raises
  :class:`DeadlineExceeded` rather than blocking a caller forever;
* **retry with jittered exponential backoff** — *only* on the two
  retry-safe outcomes: 429 admission sheds and socket timeouts.  400
  (caller bug) and 500/503 (a retry would just re-ask a broken or stale
  server) are returned/raised immediately.  Backoff sleeps are
  deterministic given ``retry_seed``, and every retry counts into
  :attr:`ServingClient.retries` so load reports stay honest.

The load generator uses raw asyncio connections instead (thousands of
concurrent clients); this class is the convenient single-caller handle::

    with ServingClient("127.0.0.1", port, max_retries=3) as client:
        response = client.query(k=20)
        sweep = client.query_multi_k([10, 20, 30])
"""

from __future__ import annotations

import json
import random
import socket
import time
from typing import Sequence

__all__ = ["ServingClient", "DeadlineExceeded"]

#: Response codes a retry can help with: admission sheds only.  A timeout
#: (socket.timeout) is the other retryable outcome.
_RETRYABLE_CODES = frozenset({429})


class DeadlineExceeded(TimeoutError):
    """A request (including its retries) exhausted its deadline."""


class ServingClient:
    """Blocking newline-delimited-JSON client for :class:`ServingServer`.

    Parameters
    ----------
    host / port:
        Server address.
    timeout:
        Socket timeout for connect and each read/write.
    deadline_s:
        Default per-request deadline covering every attempt *and* backoff
        sleep; ``None`` bounds each attempt only by the socket timeout.
    max_retries:
        Extra attempts after the first, spent only on 429 responses and
        socket timeouts.  0 disables retrying.
    backoff_base_s / backoff_cap_s:
        Jittered exponential backoff: attempt ``n`` sleeps a uniform draw
        from ``[0, min(cap, base * 2**n)]`` (full jitter — decorrelates
        clients that were shed by the same overload spike).
    retry_seed:
        Seeds the jitter RNG for deterministic tests; ``None`` draws from
        the system RNG.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 10.0,
        *,
        deadline_s: float | None = None,
        max_retries: int = 0,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        retry_seed: int | None = None,
    ) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self._host = host
        self._port = port
        self._timeout = timeout
        self._deadline_s = deadline_s
        self._max_retries = max_retries
        self._backoff_base_s = backoff_base_s
        self._backoff_cap_s = backoff_cap_s
        self._jitter = random.Random(retry_seed)
        self.retries = 0
        self._sock: socket.socket | None = None
        self._file = None
        self._connect()

    def _connect(self) -> None:
        self._close_socket()
        self._sock = socket.create_connection(
            (self._host, self._port), timeout=self._timeout
        )
        self._file = self._sock.makefile("rwb")

    def _close_socket(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _attempt(self, payload: dict, budget: float | None) -> dict:
        """One request/response round trip, bounded by ``budget`` seconds."""
        if self._file is None:
            self._connect()
        assert self._sock is not None and self._file is not None
        if budget is not None:
            self._sock.settimeout(max(min(budget, self._timeout), 1e-3))
        else:
            self._sock.settimeout(self._timeout)
        self._file.write(json.dumps(payload).encode() + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def request(self, payload: dict, deadline_s: float | None = None) -> dict:
        """Send one request, retrying 429/timeout within the deadline.

        ``deadline_s`` overrides the client default for this call.  Raises
        :class:`DeadlineExceeded` when the deadline runs out (whether on a
        slow attempt or between backoff sleeps) and ``ConnectionError`` when
        the server goes away; non-retryable error responses (400/500/503)
        are returned to the caller as-is.
        """
        deadline = deadline_s if deadline_s is not None else self._deadline_s
        started = time.monotonic()

        def _budget() -> float | None:
            if deadline is None:
                return None
            remaining = deadline - (time.monotonic() - started)
            if remaining <= 0:
                raise DeadlineExceeded(
                    f"request deadline of {deadline:.3f}s exhausted"
                )
            return remaining

        attempt = 0
        while True:
            budget = _budget()
            try:
                response = self._attempt(payload, budget)
            except TimeoutError:
                # The TCP stream is desynchronised (the response may still
                # arrive later); the connection must be rebuilt either way.
                self._close_socket()
                if attempt >= self._max_retries:
                    if deadline is not None:
                        raise DeadlineExceeded(
                            f"request timed out after {attempt + 1} attempt(s)"
                        ) from None
                    raise
            else:
                code = response.get("code")
                if response.get("ok") or code not in _RETRYABLE_CODES:
                    return response
                if attempt >= self._max_retries:
                    return response
            attempt += 1
            self.retries += 1
            pause = self._jitter.uniform(
                0.0,
                min(self._backoff_cap_s, self._backoff_base_s * (2.0 ** attempt)),
            )
            budget = _budget()
            if budget is not None:
                pause = min(pause, budget)
            if pause > 0:
                time.sleep(pause)

    def ping(self) -> dict:
        """Liveness probe."""
        return self.request({"op": "ping"})

    def health(self) -> dict:
        """Ingest-pipeline health: state, snapshot age, staleness ceiling."""
        return self.request({"op": "health"})

    def stats(self) -> dict:
        """Server counters plus snapshot version/staleness."""
        return self.request({"op": "stats"})

    def query(
        self,
        k: int | None = None,
        include_centers: bool = True,
        deadline_s: float | None = None,
    ) -> dict:
        """One clustering query (server default ``k`` when omitted)."""
        payload: dict = {"op": "query", "include_centers": include_centers}
        if k is not None:
            payload["k"] = k
        return self.request(payload, deadline_s=deadline_s)

    def query_multi_k(
        self,
        ks: Sequence[int],
        include_centers: bool = True,
        deadline_s: float | None = None,
    ) -> dict:
        """One batched k-sweep."""
        return self.request(
            {"op": "query_multi_k", "ks": list(ks), "include_centers": include_centers},
            deadline_s=deadline_s,
        )

    def close(self) -> None:
        """Close the connection (idempotent)."""
        self._close_socket()

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
