"""A small blocking client for the serving protocol (tests, CLI probes).

One connection, synchronous request/response over newline-delimited JSON.
The load generator uses raw asyncio connections instead (thousands of
concurrent clients); this class is the convenient single-caller handle::

    with ServingClient("127.0.0.1", port) as client:
        response = client.query(k=20)
        sweep = client.query_multi_k([10, 20, 30])
"""

from __future__ import annotations

import json
import socket
from typing import Sequence

__all__ = ["ServingClient"]


class ServingClient:
    """Blocking newline-delimited-JSON client for :class:`ServingServer`."""

    def __init__(self, host: str, port: int, timeout: float = 10.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def request(self, payload: dict) -> dict:
        """Send one request object and block for its response object."""
        self._file.write(json.dumps(payload).encode() + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def ping(self) -> dict:
        """Liveness probe."""
        return self.request({"op": "ping"})

    def stats(self) -> dict:
        """Server counters plus snapshot version/staleness."""
        return self.request({"op": "stats"})

    def query(self, k: int | None = None, include_centers: bool = True) -> dict:
        """One clustering query (server default ``k`` when omitted)."""
        payload: dict = {"op": "query", "include_centers": include_centers}
        if k is not None:
            payload["k"] = k
        return self.request(payload)

    def query_multi_k(self, ks: Sequence[int], include_centers: bool = True) -> dict:
        """One batched k-sweep."""
        return self.request(
            {"op": "query_multi_k", "ks": list(ks), "include_centers": include_centers}
        )

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
