"""The concurrent serving plane: lock-free queries against a live stream.

This package splits the library's single thread of control into two planes:

* **Ingest plane** — one writer drives a clusterer (``StreamClusterDriver``
  or ``ShardedEngine``) and, after every batch settles, publishes an
  immutable versioned :class:`~repro.serving.snapshot.CoresetSnapshot`
  through an RCU-style atomic reference swap
  (:class:`~repro.serving.snapshot.SnapshotPublisher`).
* **Reader plane** — any number of :class:`~repro.serving.plane.PlaneReader`
  threads answer ``query`` / ``query_multi_k`` from the latest published
  snapshot through their own warm-start
  :class:`~repro.queries.serving.QueryEngine`, never touching the ingest
  lock.  Retired snapshots are reclaimed by the garbage collector when their
  last reader drops them.

On top sits :class:`~repro.serving.server.ServingServer`, a thin asyncio
TCP front end (newline-delimited JSON) with k-sweep query batching, bounded
admission control (shed-with-429), and graceful drain, plus the load
generator in :mod:`repro.serving.loadgen` / ``tools/loadgen.py``.

See ``docs/serving.md`` for the architecture, snapshot lifecycle, protocol
spec, and tuning guidance.
"""

from .client import DeadlineExceeded, ServingClient
from .plane import PlaneReader, ServedResult, ServingPlane, SnapshotUnavailable
from .snapshot import CoresetSnapshot, SnapshotPublisher
from .loadgen import IngestLoop, LoadgenConfig, LoadReport, run_plane_loadgen
from .server import ServerThread, ServingServer

__all__ = [
    "CoresetSnapshot",
    "SnapshotPublisher",
    "ServingPlane",
    "PlaneReader",
    "ServedResult",
    "SnapshotUnavailable",
    "ServingServer",
    "ServerThread",
    "ServingClient",
    "DeadlineExceeded",
    "IngestLoop",
    "LoadgenConfig",
    "LoadReport",
    "run_plane_loadgen",
]
