"""The experiment harness: replay a stream against an algorithm and a query schedule.

This is the machinery behind every figure and table in the paper's Section 5:
the stream is fed to a :class:`~repro.core.base.StreamingClusterer` in
maximal batches between query events (``ingest_mode="batch"``, the default,
exercising the vectorized ``insert_batch`` pipeline) or point-by-point
(``ingest_mode="point"``, the paper's original measurement style); whenever
the query schedule says a query is due, the clusterer is asked for centers;
update time (per point *and* per batch), query time, memory, and the final
clustering cost are recorded.

Algorithm construction goes through a small registry of named factories so
that benchmarks, examples, and tests refer to algorithms by the same names the
paper uses ("sequential", "streamkm++", "cc", "rcc", "onlinecc").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..baselines.sequential import SequentialKMeans
from ..baselines.streamkmpp import StreamKMpp
from ..core.base import ClusteringStructure, StreamingClusterer, StreamingConfig
from ..data.stream import PointStream
from ..core.driver import (
    CachedCoresetTreeClusterer,
    CoresetTreeClusterer,
    RecursiveCachedClusterer,
)
from ..core.online_cc import OnlineCCClusterer
from ..kmeans.cost import kmeans_cost
from ..metrics.memory import MemoryUsage
from ..metrics.timing import TimingBreakdown
from ..queries.schedule import FixedIntervalSchedule, QuerySchedule

__all__ = [
    "ALGORITHM_NAMES",
    "make_algorithm",
    "RunResult",
    "ServingStats",
    "StreamingExperiment",
    "collect_serving_stats",
    "run_experiment",
]

ALGORITHM_NAMES: tuple[str, ...] = (
    "sequential",
    "streamkm++",
    "ct",
    "cc",
    "rcc",
    "onlinecc",
)


def make_algorithm(
    name: str,
    config: StreamingConfig,
    nesting_depth: int = 3,
    switch_threshold: float = 1.2,
    shards: int = 1,
    backend: str = "serial",
    routing: str = "round_robin",
) -> StreamingClusterer:
    """Instantiate a streaming clusterer by its paper name.

    Parameters
    ----------
    name:
        One of ``"sequential"``, ``"streamkm++"``, ``"ct"``, ``"cc"``,
        ``"rcc"``, ``"onlinecc"`` (case-insensitive).
    config:
        Shared streaming configuration (k, bucket size, merge degree, seed).
    nesting_depth:
        RCC nesting depth (ignored by other algorithms).
    switch_threshold:
        OnlineCC's fallback threshold alpha (ignored by other algorithms).
    shards:
        With ``shards > 1`` the coreset-tree algorithms (ct/cc/rcc) are run
        on the parallel sharded engine: one structure per shard, routed
        batches, merged-coreset queries.  Other algorithms reject sharding.
    backend / routing:
        Executor backend and routing policy for the sharded engine (see
        :class:`~repro.parallel.engine.ShardedEngine`); ignored when
        ``shards == 1``.
    """
    key = name.lower()
    if shards > 1:
        if key not in ("ct", "cc", "rcc"):
            raise ValueError(
                f"algorithm {name!r} does not support sharded ingestion; "
                "use one of ct, cc, rcc"
            )
        from ..parallel.engine import ShardedEngine

        return ShardedEngine(
            config,
            num_shards=shards,
            backend=backend,
            routing=routing,
            structure=key,
            nesting_depth=nesting_depth,
        )
    if key == "sequential":
        return SequentialKMeans(config.k)
    if key in ("streamkm++", "streamkmpp"):
        return StreamKMpp(config)
    if key == "ct":
        return CoresetTreeClusterer(config)
    if key == "cc":
        return CachedCoresetTreeClusterer(config)
    if key == "rcc":
        return RecursiveCachedClusterer(config, nesting_depth=nesting_depth)
    if key == "onlinecc":
        return OnlineCCClusterer(config, switch_threshold=switch_threshold)
    raise KeyError(f"unknown algorithm {name!r}; available: {ALGORITHM_NAMES}")


def collect_serving_stats(algorithm: StreamingClusterer) -> "ServingStats":
    """Read the serving-pipeline counters off any clusterer, tolerating absence.

    Coreset-backed algorithms expose a ``query_engine`` (warm/cold/drift
    counters) and a structure with ``cache_stats()``; baselines that bypass
    the serving pipeline yield all-zero stats.
    """
    engine = getattr(algorithm, "query_engine", None)
    structure = getattr(algorithm, "structure", None)
    if structure is None:
        structure = getattr(algorithm, "cached_tree", None)
    cache = None
    if isinstance(structure, ClusteringStructure):
        cache = structure.cache_stats()
    elif hasattr(algorithm, "cache_stats"):
        # The sharded engine aggregates per-shard cache counters itself.
        cache = algorithm.cache_stats()
    return ServingStats(
        warm_queries=engine.warm_queries if engine is not None else 0,
        cold_queries=engine.cold_queries if engine is not None else 0,
        drift_fallbacks=engine.drift_fallbacks if engine is not None else 0,
        refreshes=engine.refreshes if engine is not None else 0,
        cache_hits=cache.hits if cache is not None else 0,
        cache_misses=cache.misses if cache is not None else 0,
    )


@dataclass(frozen=True)
class ServingStats:
    """Aggregate query-serving counters collected at the end of a run.

    Attributes
    ----------
    warm_queries:
        Queries answered by the warm-start Lloyd descent alone.
    cold_queries:
        Queries that ran the full cold k-means++ path.
    drift_fallbacks:
        Warm attempts rejected by the cost-ratio guard.
    refreshes:
        Scheduled cold re-anchors after a full warm streak.
    cache_hits / cache_misses:
        Cumulative coreset-cache lookup counters of the algorithm's
        structure (0 for cache-less algorithms).
    """

    warm_queries: int = 0
    cold_queries: int = 0
    drift_fallbacks: int = 0
    refreshes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0


@dataclass
class RunResult:
    """Everything measured while replaying one stream against one algorithm.

    Attributes
    ----------
    algorithm:
        The registry name of the algorithm.
    timing:
        Update/query time breakdown (seconds).
    memory:
        Peak memory snapshot (points stored, converted to MB on demand).
    final_cost:
        k-means cost of the *last* query's centers over the whole stream.
    final_centers:
        Centers returned by the last query (shape ``(k, d)``).
    num_queries:
        Number of queries answered during the run.
    query_costs:
        Optional per-query costs (populated when ``track_query_costs`` is set).
    query_latencies:
        Wall-clock seconds of every individual query, in order — the raw
        series behind per-query latency percentiles.
    serving:
        Warm/cold/drift and cache hit/miss counters from the serving
        pipeline (zeros for algorithms that bypass it).
    """

    algorithm: str
    timing: TimingBreakdown
    memory: MemoryUsage
    final_cost: float
    final_centers: np.ndarray
    num_queries: int
    query_costs: list[float] = field(default_factory=list)
    query_latencies: list[float] = field(default_factory=list)
    serving: ServingStats = field(default_factory=ServingStats)


@dataclass
class StreamingExperiment:
    """Configuration of a single harness run.

    Attributes
    ----------
    algorithm:
        Registry name of the algorithm to run.
    config:
        Streaming configuration handed to the algorithm factory.
    schedule:
        Query schedule (defaults to one query every 100 points, the paper's
        default).
    nesting_depth / switch_threshold:
        Forwarded to :func:`make_algorithm`.
    track_query_costs:
        When True, the k-means cost of every query answer is evaluated over
        the points seen so far (slow; used only by accuracy-focused tests).
    ingest_mode:
        ``"batch"`` (default) feeds the stream through ``insert_batch`` in
        maximal blocks between query events; ``"point"`` times one ``insert``
        call per point, reproducing the pre-vectorization measurement.
    chunk_size:
        Optional cap on batch length in batch mode (None = one batch per
        inter-query segment).
    shards / backend / routing:
        With ``shards > 1`` the run uses the parallel sharded engine on the
        chosen executor backend and routing policy (ct/cc/rcc only); the
        engine is closed when the run finishes.
    """

    algorithm: str
    config: StreamingConfig
    schedule: QuerySchedule = field(default_factory=lambda: FixedIntervalSchedule(100))
    nesting_depth: int = 3
    switch_threshold: float = 1.2
    track_query_costs: bool = False
    ingest_mode: str = "batch"
    chunk_size: int | None = None
    shards: int = 1
    backend: str = "serial"
    routing: str = "round_robin"


def run_experiment(experiment: StreamingExperiment, points: np.ndarray) -> RunResult:
    """Replay ``points`` through the configured algorithm and schedule."""
    data = np.asarray(points, dtype=np.float64)
    if data.ndim != 2 or data.shape[0] == 0:
        raise ValueError("points must be a non-empty 2-D array")
    if experiment.ingest_mode not in ("batch", "point"):
        raise ValueError(
            f"ingest_mode must be 'batch' or 'point', got {experiment.ingest_mode!r}"
        )

    algorithm = make_algorithm(
        experiment.algorithm,
        experiment.config,
        nesting_depth=experiment.nesting_depth,
        switch_threshold=experiment.switch_threshold,
        shards=experiment.shards,
        backend=experiment.backend,
        routing=experiment.routing,
    )
    try:
        return _replay(experiment, algorithm, data)
    finally:
        closer = getattr(algorithm, "close", None)
        if closer is not None:
            closer()


def _replay(
    experiment: StreamingExperiment,
    algorithm: StreamingClusterer,
    data: np.ndarray,
) -> RunResult:
    """Drive one already-constructed algorithm through the stream and schedule."""
    query_set = experiment.schedule.query_set(data.shape[0])

    timing = TimingBreakdown()
    peak_points = 0
    last_centers: np.ndarray | None = None
    query_costs: list[float] = []
    query_latencies: list[float] = []
    num_queries = 0
    # Parallel engines apply inserts asynchronously; drain the queued work
    # under the update clock before timing a query, so backlog is billed as
    # update time instead of inflating query latency.
    flush = getattr(algorithm, "flush", None)

    def drain_updates() -> None:
        if flush is not None:
            start = time.perf_counter()
            flush()
            timing.add_update(time.perf_counter() - start, 0)

    def run_query(position: int) -> None:
        nonlocal last_centers, num_queries, peak_points
        drain_updates()
        start = time.perf_counter()
        result = algorithm.query()
        elapsed = time.perf_counter() - start
        timing.add_query(elapsed)
        query_latencies.append(elapsed)
        last_centers = result.centers
        num_queries += 1
        peak_points = max(peak_points, algorithm.stored_points())
        if experiment.track_query_costs:
            query_costs.append(kmeans_cost(data[:position], result.centers))

    if experiment.ingest_mode == "batch":
        stream = PointStream(data)
        for block in stream.iter_segments(query_set, chunk_size=experiment.chunk_size):
            start = time.perf_counter()
            algorithm.insert_batch(block)
            timing.add_batch_update(time.perf_counter() - start, block.shape[0])
            if stream.position in query_set:
                run_query(stream.position)
    else:
        for index in range(data.shape[0]):
            start = time.perf_counter()
            algorithm.insert(data[index])
            timing.add_update(time.perf_counter() - start)
            if index + 1 in query_set:
                run_query(index + 1)

    if last_centers is None:
        # No scheduled query fired (short stream): issue one final query so
        # that every run produces centers and a cost.
        drain_updates()
        start = time.perf_counter()
        result = algorithm.query()
        elapsed = time.perf_counter() - start
        timing.add_query(elapsed)
        query_latencies.append(elapsed)
        last_centers = result.centers
        num_queries += 1

    peak_points = max(peak_points, algorithm.stored_points())
    final_cost = kmeans_cost(data, last_centers)

    return RunResult(
        algorithm=experiment.algorithm,
        timing=timing,
        memory=MemoryUsage(points_stored=peak_points, dimension=data.shape[1]),
        final_cost=final_cost,
        final_centers=last_centers,
        num_queries=num_queries,
        query_costs=query_costs,
        query_latencies=query_latencies,
        serving=collect_serving_stats(algorithm),
    )
