"""The experiment harness: replay a stream against an algorithm and a query schedule.

This is the machinery behind every figure and table in the paper's Section 5:
the stream is fed to a :class:`~repro.core.base.StreamingClusterer` in
maximal batches between query events (``ingest_mode="batch"``, the default,
exercising the vectorized ``insert_batch`` pipeline) or point-by-point
(``ingest_mode="point"``, the paper's original measurement style); whenever
the query schedule says a query is due, the clusterer is asked for centers;
update time (per point *and* per batch), query time, memory, and the final
clustering cost are recorded.

Algorithm construction goes through the
:class:`~repro.core.registry.AlgorithmRegistry` so that benchmarks, examples,
and tests refer to algorithms by the same names the paper uses
("sequential", "streamkm++", "cc", "rcc", "onlinecc", ...).
:func:`make_algorithm` is a thin back-compat shim over
:meth:`~repro.core.registry.AlgorithmRegistry.create`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core.base import ClusteringStructure, StreamingClusterer, StreamingConfig
from ..core.registry import default_registry
from ..data.stream import PointStream
from ..kmeans.cost import kmeans_cost
from ..metrics.memory import MemoryUsage
from ..metrics.timing import TimingBreakdown
from ..queries.schedule import FixedIntervalSchedule, QuerySchedule

__all__ = [
    "ALGORITHM_NAMES",
    "make_algorithm",
    "RunResult",
    "ServingStats",
    "StreamingExperiment",
    "collect_serving_stats",
    "run_experiment",
]

#: Canonical algorithm names, in registry order (derived, not hand-kept).
ALGORITHM_NAMES: tuple[str, ...] = default_registry().names()


def make_algorithm(
    name: str,
    config: StreamingConfig,
    nesting_depth: int = 3,
    switch_threshold: float = 1.2,
    shards: int = 1,
    backend: str = "serial",
    routing: str = "round_robin",
    auto_recover: bool = False,
    recovery_interval: int = 4096,
    max_restarts: int = 2,
    **options,
) -> StreamingClusterer:
    """Instantiate a streaming clusterer by its paper name.

    Back-compat shim over :meth:`~repro.core.registry.AlgorithmRegistry.
    create`: the legacy ``nesting_depth`` / ``switch_threshold`` keywords are
    forwarded only to the algorithms whose options declare those fields
    (matching the old "ignored by other algorithms" contract), and any
    additional keyword becomes a typed option override (``window_buckets=4``,
    ``fuzziness=1.5``, ...) validated by the registry.

    Parameters
    ----------
    name:
        A registered algorithm name — ``"sequential"``, ``"streamkm++"``,
        ``"ct"``, ``"cc"``, ``"rcc"``, ``"onlinecc"``, ``"window"``,
        ``"decay"``, or ``"soft"`` (case-insensitive).
    config:
        Shared streaming configuration (k, bucket size, merge degree, seed).
    nesting_depth:
        RCC nesting depth (ignored by other algorithms).
    switch_threshold:
        OnlineCC's fallback threshold alpha (ignored by other algorithms).
    shards:
        With ``shards > 1`` the coreset-tree algorithms (ct/cc/rcc) are run
        on the parallel sharded engine: one structure per shard, routed
        batches, merged-coreset queries.  Other algorithms reject sharding.
    backend / routing:
        Executor backend and routing policy for the sharded engine (see
        :class:`~repro.parallel.engine.ShardedEngine`); ignored when
        ``shards == 1``.
    auto_recover / recovery_interval / max_restarts:
        Crash-recovery knobs of the sharded engine (journaled replay of
        killed workers); ignored when ``shards == 1``.
    """
    registry = default_registry()
    spec = registry.get(name)
    option_fields = {f.name for f in spec.option_fields}
    # The legacy keywords carry defaults, so they only count as overrides for
    # algorithms that actually declare the field (old call sites pass them
    # unconditionally and expect other algorithms to ignore them).
    legacy = {"nesting_depth": nesting_depth, "switch_threshold": switch_threshold}
    merged = dict(options)
    for key, value in legacy.items():
        if key in option_fields and key not in merged:
            merged[key] = value
    return registry.create(
        spec.name,
        config,
        shards=shards,
        backend=backend,
        routing=routing,
        auto_recover=auto_recover,
        recovery_interval=recovery_interval,
        max_restarts=max_restarts,
        **merged,
    )


def collect_serving_stats(algorithm: StreamingClusterer) -> "ServingStats":
    """Read the serving-pipeline counters off any clusterer, tolerating absence.

    Coreset-backed algorithms expose a ``query_engine`` (warm/cold/drift
    counters) and a structure with ``cache_stats()``; baselines that bypass
    the serving pipeline yield all-zero stats.
    """
    engine = getattr(algorithm, "query_engine", None)
    structure = getattr(algorithm, "structure", None)
    if structure is None:
        structure = getattr(algorithm, "cached_tree", None)
    cache = None
    if isinstance(structure, ClusteringStructure):
        cache = structure.cache_stats()
    elif hasattr(algorithm, "cache_stats"):
        # The sharded engine aggregates per-shard cache counters itself.
        cache = algorithm.cache_stats()
    return ServingStats(
        warm_queries=engine.warm_queries if engine is not None else 0,
        cold_queries=engine.cold_queries if engine is not None else 0,
        drift_fallbacks=engine.drift_fallbacks if engine is not None else 0,
        refreshes=engine.refreshes if engine is not None else 0,
        cache_hits=cache.hits if cache is not None else 0,
        cache_misses=cache.misses if cache is not None else 0,
    )


@dataclass(frozen=True)
class ServingStats:
    """Aggregate query-serving counters collected at the end of a run.

    Attributes
    ----------
    warm_queries:
        Queries answered by the warm-start Lloyd descent alone.
    cold_queries:
        Queries that ran the full cold k-means++ path.
    drift_fallbacks:
        Warm attempts rejected by the cost-ratio guard.
    refreshes:
        Scheduled cold re-anchors after a full warm streak.
    cache_hits / cache_misses:
        Cumulative coreset-cache lookup counters of the algorithm's
        structure (0 for cache-less algorithms).
    """

    warm_queries: int = 0
    cold_queries: int = 0
    drift_fallbacks: int = 0
    refreshes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0


@dataclass
class RunResult:
    """Everything measured while replaying one stream against one algorithm.

    Attributes
    ----------
    algorithm:
        The registry name of the algorithm.
    timing:
        Update/query time breakdown (seconds).
    memory:
        Peak memory snapshot (points stored, converted to MB on demand).
    final_cost:
        k-means cost of the *last* query's centers over the whole stream.
    final_centers:
        Centers returned by the last query (shape ``(k, d)``).
    num_queries:
        Number of queries answered during the run.
    query_costs:
        Optional per-query costs (populated when ``track_query_costs`` is set).
    query_latencies:
        Wall-clock seconds of every individual query, in order — the raw
        series behind per-query latency percentiles.
    serving:
        Warm/cold/drift and cache hit/miss counters from the serving
        pipeline (zeros for algorithms that bypass it).
    checkpoints:
        Paths of every checkpoint written during the run (mid-run interval
        snapshots plus the optional final snapshot), in write order.
    checkpoint_seconds:
        Wall-clock seconds spent writing checkpoints (kept out of the
        update/query timing so snapshots never skew paper measurements).
    reshards:
        :class:`~repro.parallel.elastic.ReshardReport` for every live
        reshard the run performed (``reshard_at``), in stream order.
    recoveries:
        :class:`~repro.parallel.elastic.RecoveryEvent` for every automatic
        worker recovery the engine performed during the run.
    """

    algorithm: str
    timing: TimingBreakdown
    memory: MemoryUsage
    final_cost: float
    final_centers: np.ndarray
    num_queries: int
    query_costs: list[float] = field(default_factory=list)
    query_latencies: list[float] = field(default_factory=list)
    serving: ServingStats = field(default_factory=ServingStats)
    checkpoints: list[Path] = field(default_factory=list)
    checkpoint_seconds: float = 0.0
    reshards: list = field(default_factory=list)
    recoveries: list = field(default_factory=list)


@dataclass
class StreamingExperiment:
    """Configuration of a single harness run.

    Attributes
    ----------
    algorithm:
        Registry name of the algorithm to run.
    config:
        Streaming configuration handed to the algorithm factory.
    schedule:
        Query schedule (defaults to one query every 100 points, the paper's
        default).
    nesting_depth / switch_threshold:
        Forwarded to :func:`make_algorithm`.
    algorithm_options:
        Extra per-algorithm option overrides (``{"window_buckets": 4}``,
        ``{"fuzziness": 1.5}``, ...) forwarded to the registry and validated
        against the algorithm's typed options dataclass.
    track_query_costs:
        When True, the k-means cost of every query answer is evaluated over
        the points seen so far (slow; used only by accuracy-focused tests).
    ingest_mode:
        ``"batch"`` (default) feeds the stream through ``insert_batch`` in
        maximal blocks between query events; ``"point"`` times one ``insert``
        call per point, reproducing the pre-vectorization measurement.
    chunk_size:
        Optional cap on batch length in batch mode (None = one batch per
        inter-query segment).
    shards / backend / routing:
        With ``shards > 1`` the run uses the parallel sharded engine on the
        chosen executor backend and routing policy (ct/cc/rcc only); the
        engine is closed when the run finishes.
    checkpoint_interval / checkpoint_dir:
        With both set, the run snapshots the live clusterer into
        ``checkpoint_dir/ckpt-<points>`` at least every
        ``checkpoint_interval`` ingested points (aligned to ingestion block
        boundaries).  Checkpoint time is recorded separately and never
        counted as update or query time.
    checkpoint_keep_last:
        With ``checkpoint_keep_last=N`` set alongside interval snapshots,
        older interval snapshots are pruned after each write so at most the
        newest ``N`` remain on disk (a corrupt-only tail is never pruned to
        zero good snapshots; see
        :func:`repro.checkpoint.prune_checkpoints`).  Pruned paths stay
        listed in :attr:`RunResult.checkpoints` for accounting.
    checkpoint_to:
        Optional path for one final snapshot taken after the stream ends
        (before the engine is closed).
    resume_from:
        Optional checkpoint to restore instead of building a fresh
        algorithm.  The checkpoint's structure-config fingerprint must match
        the configuration this experiment would build, otherwise
        :class:`~repro.checkpoint.CheckpointError` is raised.  By default
        the supplied ``points`` are treated as the *remaining* stream and
        ingested in full.
    resume_skip_ingested:
        With ``resume_from``, treat ``points`` as the stream *from the
        beginning* and skip the first ``points_seen`` rows the checkpoint
        already ingested (the CLI uses this: datasets are regenerated
        deterministically from the seed, so replaying from zero would
        double-ingest).
    stream_annotations:
        Optional stream-identity dict (dataset name, generator seed, ...)
        stored in every snapshot this run writes and *verified* on resume —
        the structure fingerprint covers the algorithm config, annotations
        cover the stream, so resuming against a different dataset or seed
        fails fast instead of silently splicing two streams.
    reshard_at:
        Optional ``{points: new_num_shards}`` schedule of live reshards:
        once ``points_seen`` reaches a threshold (aligned to ingestion
        block boundaries, exactly like checkpoints), the sharded engine is
        resharded to the mapped shard count.  Requires ``shards > 1``; the
        reports land in :attr:`RunResult.reshards`.
    auto_recover / recovery_interval / max_restarts:
        Crash-recovery knobs forwarded to the sharded engine: journal
        routed blocks, refresh each shard's recovery point every
        ``recovery_interval`` points, and transparently restart a dead
        worker up to ``max_restarts`` times (recoveries land in
        :attr:`RunResult.recoveries`).
    """

    algorithm: str
    config: StreamingConfig
    schedule: QuerySchedule = field(default_factory=lambda: FixedIntervalSchedule(100))
    nesting_depth: int = 3
    switch_threshold: float = 1.2
    algorithm_options: dict = field(default_factory=dict)
    track_query_costs: bool = False
    ingest_mode: str = "batch"
    chunk_size: int | None = None
    shards: int = 1
    backend: str = "serial"
    routing: str = "round_robin"
    checkpoint_interval: int | None = None
    checkpoint_dir: str | Path | None = None
    checkpoint_keep_last: int | None = None
    checkpoint_to: str | Path | None = None
    resume_from: str | Path | None = None
    resume_skip_ingested: bool = False
    stream_annotations: dict | None = None
    reshard_at: dict[int, int] | None = None
    auto_recover: bool = False
    recovery_interval: int = 4096
    max_restarts: int = 2


def _resume_algorithm(experiment: StreamingExperiment) -> StreamingClusterer:
    """Restore the experiment's algorithm from ``experiment.resume_from``.

    The checkpoint's fingerprint is checked against the configuration this
    experiment would otherwise build, so a resume with drifted CLI flags or
    config fails fast with a :class:`~repro.checkpoint.CheckpointError`
    instead of silently continuing a different experiment.
    """
    from ..checkpoint import fingerprint_for, load_checkpoint

    # Build a throwaway instance only to learn the expected fingerprint (for
    # sharded runs, on the serial backend: the backend is not fingerprinted).
    probe = make_algorithm(
        experiment.algorithm,
        experiment.config,
        nesting_depth=experiment.nesting_depth,
        switch_threshold=experiment.switch_threshold,
        shards=experiment.shards,
        backend="serial",
        routing=experiment.routing,
        **experiment.algorithm_options,
    )
    try:
        expected = fingerprint_for(probe)
    finally:
        closer = getattr(probe, "close", None)
        if closer is not None:
            closer()
    overrides = {"backend": experiment.backend} if experiment.shards > 1 else {}
    return load_checkpoint(
        experiment.resume_from,
        expected_fingerprint=expected,
        expected_annotations=experiment.stream_annotations,
        **overrides,
    )


def run_experiment(experiment: StreamingExperiment, points: np.ndarray) -> RunResult:
    """Replay ``points`` through the configured algorithm and schedule.

    The stream is converted once up front to the configuration's storage
    dtype (``config.dtype``), so with ``dtype="float32"`` every block the
    algorithm ingests — and every slab the sharded engine ships — is single
    precision end to end.
    """
    data = np.asarray(points, dtype=experiment.config.np_dtype)
    if data.ndim != 2 or data.shape[0] == 0:
        raise ValueError("points must be a non-empty 2-D array")
    if experiment.ingest_mode not in ("batch", "point"):
        raise ValueError(
            f"ingest_mode must be 'batch' or 'point', got {experiment.ingest_mode!r}"
        )
    if (experiment.checkpoint_interval is not None) != (
        experiment.checkpoint_dir is not None
    ):
        raise ValueError(
            "checkpoint_interval and checkpoint_dir must be set together"
        )
    if experiment.checkpoint_interval is not None and experiment.checkpoint_interval <= 0:
        raise ValueError("checkpoint_interval must be positive")
    if experiment.checkpoint_keep_last is not None:
        if experiment.checkpoint_dir is None:
            raise ValueError("checkpoint_keep_last requires checkpoint_dir")
        if experiment.checkpoint_keep_last < 1:
            raise ValueError("checkpoint_keep_last must be >= 1")
    if experiment.reshard_at:
        if experiment.shards <= 1:
            raise ValueError("reshard_at requires a sharded run (shards > 1)")
        for at, target in experiment.reshard_at.items():
            if int(at) <= 0 or int(target) <= 0:
                raise ValueError(
                    f"reshard_at entries must be positive, got {at}: {target}"
                )

    if experiment.resume_from is not None:
        algorithm = _resume_algorithm(experiment)
        if experiment.resume_skip_ingested:
            already = min(algorithm.points_seen, data.shape[0])
            data = data[already:]
            if data.shape[0] == 0:
                from ..checkpoint import CheckpointError

                closer = getattr(algorithm, "close", None)
                if closer is not None:
                    closer()
                raise CheckpointError(
                    "checkpoint already covers the whole stream "
                    f"({algorithm.points_seen} points ingested); supply more points"
                )
    else:
        algorithm = make_algorithm(
            experiment.algorithm,
            experiment.config,
            nesting_depth=experiment.nesting_depth,
            switch_threshold=experiment.switch_threshold,
            shards=experiment.shards,
            backend=experiment.backend,
            routing=experiment.routing,
            auto_recover=experiment.auto_recover,
            recovery_interval=experiment.recovery_interval,
            max_restarts=experiment.max_restarts,
            **experiment.algorithm_options,
        )
    try:
        return _replay(experiment, algorithm, data)
    finally:
        closer = getattr(algorithm, "close", None)
        if closer is not None:
            closer()


def _replay(
    experiment: StreamingExperiment,
    algorithm: StreamingClusterer,
    data: np.ndarray,
) -> RunResult:
    """Drive one already-constructed algorithm through the stream and schedule."""
    query_set = experiment.schedule.query_set(data.shape[0])

    timing = TimingBreakdown()
    peak_points = 0
    last_centers: np.ndarray | None = None
    query_costs: list[float] = []
    query_latencies: list[float] = []
    num_queries = 0
    checkpoints: list[Path] = []
    checkpoint_seconds = 0.0
    next_checkpoint = (
        algorithm.points_seen + experiment.checkpoint_interval
        if experiment.checkpoint_interval is not None
        else None
    )

    def write_checkpoint(target: Path) -> None:
        nonlocal checkpoint_seconds
        # Parallel engines quiesce inside snapshot(); drain the queued insert
        # backlog under the update clock first (exactly as run_query does) so
        # checkpoint_seconds measures only the snapshot itself.
        drain_updates()
        start = time.perf_counter()
        checkpoints.append(
            algorithm.snapshot(target, annotations=experiment.stream_annotations)
        )
        checkpoint_seconds += time.perf_counter() - start

    def maybe_checkpoint() -> None:
        nonlocal next_checkpoint
        if next_checkpoint is None or algorithm.points_seen < next_checkpoint:
            return
        assert experiment.checkpoint_interval is not None
        assert experiment.checkpoint_dir is not None
        write_checkpoint(
            Path(experiment.checkpoint_dir) / f"ckpt-{algorithm.points_seen:010d}"
        )
        if experiment.checkpoint_keep_last is not None:
            from ..checkpoint import prune_checkpoints

            prune_checkpoints(
                Path(experiment.checkpoint_dir), experiment.checkpoint_keep_last
            )
        while next_checkpoint <= algorithm.points_seen:
            next_checkpoint += experiment.checkpoint_interval

    # Live reshards fire at stream thresholds, aligned (like checkpoints) to
    # ingestion block boundaries.  Reshard time is the engine's quiesce pause,
    # reported per event; it is never billed as update or query time.
    pending_reshards = sorted(
        (int(at), int(target)) for at, target in (experiment.reshard_at or {}).items()
    )
    reshard_reports: list = []

    def maybe_reshard() -> None:
        while pending_reshards and algorithm.points_seen >= pending_reshards[0][0]:
            _, target = pending_reshards.pop(0)
            resharder = getattr(algorithm, "reshard", None)
            if resharder is None:
                raise ValueError(
                    f"algorithm {experiment.algorithm!r} does not support live resharding"
                )
            drain_updates()
            reshard_reports.append(resharder(target))
    # Parallel engines apply inserts asynchronously; drain the queued work
    # under the update clock before timing a query, so backlog is billed as
    # update time instead of inflating query latency.
    flush = getattr(algorithm, "flush", None)

    def drain_updates() -> None:
        if flush is not None:
            start = time.perf_counter()
            flush()
            timing.add_update(time.perf_counter() - start, 0)

    def run_query(position: int) -> None:
        nonlocal last_centers, num_queries, peak_points
        drain_updates()
        start = time.perf_counter()
        result = algorithm.query()
        elapsed = time.perf_counter() - start
        timing.add_query(elapsed)
        query_latencies.append(elapsed)
        last_centers = result.centers
        num_queries += 1
        peak_points = max(peak_points, algorithm.stored_points())
        if experiment.track_query_costs:
            query_costs.append(kmeans_cost(data[:position], result.centers))

    if experiment.ingest_mode == "batch":
        # Preserve the storage dtype: the default PointStream would upcast a
        # float32 stream back to float64 and force a per-block re-cast inside
        # the timed update loop.
        stream = PointStream(data, dtype=data.dtype)
        for block in stream.iter_segments(query_set, chunk_size=experiment.chunk_size):
            start = time.perf_counter()
            algorithm.insert_batch(block)
            timing.add_batch_update(time.perf_counter() - start, block.shape[0])
            maybe_reshard()
            maybe_checkpoint()
            if stream.position in query_set:
                run_query(stream.position)
    else:
        for index in range(data.shape[0]):
            start = time.perf_counter()
            algorithm.insert(data[index])
            timing.add_update(time.perf_counter() - start)
            maybe_reshard()
            maybe_checkpoint()
            if index + 1 in query_set:
                run_query(index + 1)

    if last_centers is None:
        # No scheduled query fired (short stream): issue one final query so
        # that every run produces centers and a cost.
        drain_updates()
        start = time.perf_counter()
        result = algorithm.query()
        elapsed = time.perf_counter() - start
        timing.add_query(elapsed)
        query_latencies.append(elapsed)
        last_centers = result.centers
        num_queries += 1

    peak_points = max(peak_points, algorithm.stored_points())
    final_cost = kmeans_cost(data, last_centers)

    if experiment.checkpoint_to is not None:
        write_checkpoint(Path(experiment.checkpoint_to))

    return RunResult(
        algorithm=experiment.algorithm,
        timing=timing,
        memory=MemoryUsage(points_stored=peak_points, dimension=data.shape[1]),
        final_cost=final_cost,
        final_centers=last_centers,
        num_queries=num_queries,
        query_costs=query_costs,
        query_latencies=query_latencies,
        serving=collect_serving_stats(algorithm),
        checkpoints=checkpoints,
        checkpoint_seconds=checkpoint_seconds,
        reshards=reshard_reports,
        recoveries=list(getattr(algorithm, "recovery_events", ())),
    )
