"""Plain-text report formatting for benchmark output.

The benchmark harness prints tables shaped like the paper's figures and
tables so that a run of ``pytest benchmarks/ --benchmark-only`` produces a
readable record of the reproduced series.  Everything here is purely
presentational: simple fixed-width tables, no plotting dependencies.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = [
    "format_table",
    "format_series_table",
    "format_nested_series",
    "latency_summary",
]


def _format_value(value: object, precision: int) -> str:
    if isinstance(value, float):
        if value != 0.0 and (abs(value) >= 1e6 or abs(value) < 1e-3):
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Render a list of dict rows as a fixed-width text table."""
    if not rows:
        return (title + "\n(no rows)") if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    rendered = [
        {column: _format_value(row.get(column, ""), precision) for column in columns}
        for row in rows
    ]
    widths = {
        column: max(len(column), *(len(row[column]) for row in rendered))
        for column in columns
    }

    lines: list[str] = []
    if title:
        lines.append(title)
    header = " | ".join(column.ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[column] for column in columns))
    for row in rendered:
        lines.append(" | ".join(row[column].ljust(widths[column]) for column in columns))
    return "\n".join(lines)


def format_series_table(
    series: Mapping[str, Mapping[object, float]],
    x_label: str,
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Render ``{series_name: {x: y}}`` with one row per x and one column per series.

    This is the shape of most of the paper's figures (one line per algorithm).
    """
    if not series:
        return (title + "\n(no series)") if title else "(no series)"
    x_values: list[object] = []
    for mapping in series.values():
        for x in mapping:
            if x not in x_values:
                x_values.append(x)
    x_values.sort(key=lambda value: (isinstance(value, str), value))

    rows = []
    for x in x_values:
        row: dict[str, object] = {x_label: x}
        for name, mapping in series.items():
            if x in mapping:
                row[name] = mapping[x]
        rows.append(row)
    columns = [x_label, *series.keys()]
    return format_table(rows, columns=columns, title=title, precision=precision)


def latency_summary(latencies: Iterable[float]) -> dict[str, float]:
    """Percentile summary of a per-query latency series, in microseconds.

    Returns ``{"queries", "median_us", "p95_us", "max_us", "mean_us"}`` —
    the row shape the query-latency benchmarks feed to :func:`format_table`.
    An empty series yields all zeros.
    """
    values = sorted(float(v) for v in latencies)
    if not values:
        return {"queries": 0.0, "median_us": 0.0, "p95_us": 0.0, "max_us": 0.0, "mean_us": 0.0}

    def pct(q: float) -> float:
        index = min(len(values) - 1, int(round(q * (len(values) - 1))))
        return values[index]

    return {
        "queries": float(len(values)),
        "median_us": pct(0.5) * 1e6,
        "p95_us": pct(0.95) * 1e6,
        "max_us": values[-1] * 1e6,
        "mean_us": sum(values) / len(values) * 1e6,
    }


def format_nested_series(
    series: Mapping[str, Mapping[object, Mapping[str, float]]],
    x_label: str,
    metric: str,
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Like :func:`format_series_table` but extracting one metric from nested dicts.

    Used for the Figure 7–10 results, which store several metrics per
    (algorithm, x) pair.
    """
    flattened = {
        name: {x: values[metric] for x, values in mapping.items() if metric in values}
        for name, mapping in series.items()
    }
    return format_series_table(flattened, x_label=x_label, title=title, precision=precision)
