"""Experiment harness, per-figure drivers, and report formatting."""

from .experiments import (
    DEFAULT_ALGORITHMS,
    cost_vs_bucket_size,
    cost_vs_k,
    dataset_table,
    memory_table,
    poisson_queries,
    rcc_tradeoffs,
    threshold_sweep,
    time_vs_bucket_size,
    time_vs_query_interval,
)
from .harness import (
    ALGORITHM_NAMES,
    RunResult,
    StreamingExperiment,
    make_algorithm,
    run_experiment,
)
from .report import format_nested_series, format_series_table, format_table

__all__ = [
    "DEFAULT_ALGORITHMS",
    "cost_vs_bucket_size",
    "cost_vs_k",
    "dataset_table",
    "memory_table",
    "poisson_queries",
    "rcc_tradeoffs",
    "threshold_sweep",
    "time_vs_bucket_size",
    "time_vs_query_interval",
    "ALGORITHM_NAMES",
    "RunResult",
    "StreamingExperiment",
    "make_algorithm",
    "run_experiment",
    "format_nested_series",
    "format_series_table",
    "format_table",
]
