"""Per-figure and per-table experiment drivers.

Each function reproduces one artefact from the paper's evaluation (Section 5)
and returns plain dictionaries/lists so benchmarks and examples can print or
assert on them without extra plumbing.  The paper's exact sweep values are the
defaults, but every sweep is parameterisable so the test suite can run reduced
versions quickly.

Mapping to the paper (see also DESIGN.md §3):

* :func:`cost_vs_k`                — Figure 4
* :func:`time_vs_query_interval`   — Figure 5
* :func:`cost_vs_bucket_size`      — Figure 6
* :func:`time_vs_bucket_size`      — Figure 7
* :func:`poisson_queries`          — Figures 8, 9, 10
* :func:`threshold_sweep`          — Figure 11
* :func:`dataset_table`            — Table 3
* :func:`memory_table`             — Table 4
* :func:`rcc_tradeoffs`            — Table 2

Two additional drivers exercise the query-serving pipeline beyond the paper:

* :func:`query_latency_profile`    — per-query latency percentiles and
  warm/cold/cache counters under a figure-5-style workload (any interval,
  including the q=1 stress case);
* :func:`multi_k_query_costs`      — a figure-4-style k-sweep answered by
  ONE batched multi-k query per algorithm instead of one full stream replay
  per (algorithm, k) pair;
* :func:`scaling_profile`          — ingestion-throughput scaling of the
  parallel sharded engine across shard counts and executor backends,
  against the single-structure baseline;
* :func:`drift_adaptation_curve`   — trailing-window cost of the full-history
  algorithms vs. the sliding-window and decayed clusterers over a drifting
  stream (the "window" figure);
* :func:`soft_membership_profile`  — membership sharpness (entropy, max
  membership) and hard cost of the soft clusterer across fuzziness exponents
  (the "soft" figure).
"""

from __future__ import annotations

import time

import numpy as np

from ..core.base import StreamingConfig
from ..core.recursive_cache import RecursiveCachedTree, merge_degree_for_order
from ..coreset.bucket import Bucket, WeightedPointSet
from ..data.loaders import PAPER_SIZES, dataset_names, load_dataset
from ..kmeans.batch import weighted_kmeans
from ..kmeans.cost import kmeans_cost
from ..queries.schedule import FixedIntervalSchedule, PoissonSchedule
from .harness import RunResult, StreamingExperiment, make_algorithm, run_experiment
from .report import latency_summary

__all__ = [
    "DEFAULT_ALGORITHMS",
    "cost_vs_k",
    "time_vs_query_interval",
    "cost_vs_bucket_size",
    "time_vs_bucket_size",
    "poisson_queries",
    "threshold_sweep",
    "dataset_table",
    "memory_table",
    "rcc_tradeoffs",
    "query_latency_profile",
    "multi_k_query_costs",
    "scaling_profile",
    "drift_adaptation_curve",
    "soft_membership_profile",
]

# The algorithm line-up of the paper's figures.
DEFAULT_ALGORITHMS: tuple[str, ...] = ("sequential", "streamkm++", "cc", "rcc", "onlinecc")


def _run(
    algorithm: str,
    points: np.ndarray,
    config: StreamingConfig,
    schedule,
    **kwargs,
) -> RunResult:
    experiment = StreamingExperiment(
        algorithm=algorithm, config=config, schedule=schedule, **kwargs
    )
    return run_experiment(experiment, points)


def cost_vs_k(
    points: np.ndarray,
    k_values: tuple[int, ...] = (10, 20, 30, 40, 50),
    algorithms: tuple[str, ...] = DEFAULT_ALGORITHMS,
    query_interval: int = 100,
    include_batch: bool = True,
    seed: int = 0,
    n_init: int = 5,
) -> dict[str, dict[int, float]]:
    """Figure 4: final k-means cost as a function of the number of clusters.

    Returns ``{algorithm: {k: cost}}``; the batch k-means++ baseline appears
    under the key ``"kmeans++"`` when ``include_batch`` is True.  ``n_init``
    controls the query-time k-means++ restarts (more restarts reduce
    local-optimum variance in the reported costs).
    """
    results: dict[str, dict[int, float]] = {name: {} for name in algorithms}
    if include_batch:
        results["kmeans++"] = {}
    for k in k_values:
        config = StreamingConfig(k=k, seed=seed, n_init=n_init)
        schedule = FixedIntervalSchedule(query_interval)
        for name in algorithms:
            run = _run(name, points, config, schedule)
            results[name][k] = run.final_cost
        if include_batch:
            batch = weighted_kmeans(points, k, rng=np.random.default_rng(seed))
            results["kmeans++"][k] = kmeans_cost(points, batch.centers)
    return results


def time_vs_query_interval(
    points: np.ndarray,
    intervals: tuple[int, ...] = (50, 100, 200, 400, 800, 1600, 3200),
    algorithms: tuple[str, ...] = ("streamkm++", "cc", "rcc", "onlinecc"),
    k: int = 30,
    seed: int = 0,
    warm_start: bool = False,
) -> dict[str, dict[int, float]]:
    """Figure 5: total runtime (seconds) over the stream vs. the query interval q.

    ``warm_start`` defaults to False: the paper's figures measure the
    from-scratch query path, and the relative timing claims asserted by the
    figure benchmarks hold in that model (warm-start serving collapses query
    cost for every coreset algorithm and is measured by its own benchmark).
    """
    config = StreamingConfig(k=k, seed=seed, warm_start=warm_start)
    results: dict[str, dict[int, float]] = {name: {} for name in algorithms}
    for interval in intervals:
        schedule = FixedIntervalSchedule(interval)
        for name in algorithms:
            run = _run(name, points, config, schedule)
            results[name][interval] = run.timing.total_seconds
    return results


def cost_vs_bucket_size(
    points: np.ndarray,
    bucket_multipliers: tuple[int, ...] = (20, 40, 60, 80, 100),
    algorithms: tuple[str, ...] = ("streamkm++", "cc", "rcc", "onlinecc"),
    k: int = 30,
    query_interval: int = 100,
    seed: int = 0,
) -> dict[str, dict[int, float]]:
    """Figure 6: final k-means cost vs. bucket size m (multiples of k)."""
    results: dict[str, dict[int, float]] = {name: {} for name in algorithms}
    schedule = FixedIntervalSchedule(query_interval)
    for multiplier in bucket_multipliers:
        config = StreamingConfig(k=k, coreset_size=multiplier * k, seed=seed)
        for name in algorithms:
            run = _run(name, points, config, schedule)
            results[name][multiplier] = run.final_cost
    return results


def time_vs_bucket_size(
    points: np.ndarray,
    bucket_multipliers: tuple[int, ...] = (20, 40, 60, 80, 100),
    algorithms: tuple[str, ...] = ("streamkm++", "cc", "rcc", "onlinecc"),
    k: int = 30,
    query_interval: int = 100,
    seed: int = 0,
    warm_start: bool = False,
) -> dict[str, dict[int, dict[str, float]]]:
    """Figure 7: average runtime per point (microseconds) vs. bucket size m.

    Returns ``{algorithm: {multiplier: {"update_us": .., "query_us": .., "total_us": ..}}}``.
    Timing figures default to the paper's from-scratch query model
    (``warm_start=False``).
    """
    results: dict[str, dict[int, dict[str, float]]] = {name: {} for name in algorithms}
    schedule = FixedIntervalSchedule(query_interval)
    for multiplier in bucket_multipliers:
        config = StreamingConfig(
            k=k, coreset_size=multiplier * k, seed=seed, warm_start=warm_start
        )
        for name in algorithms:
            run = _run(name, points, config, schedule)
            results[name][multiplier] = {
                "update_us": run.timing.update_time_per_point() * 1e6,
                "query_us": run.timing.query_time_per_point() * 1e6,
                "total_us": run.timing.total_time_per_point() * 1e6,
                "update_us_per_batch": run.timing.update_time_per_batch() * 1e6,
            }
    return results


def poisson_queries(
    points: np.ndarray,
    mean_intervals: tuple[int, ...] = (50, 100, 200, 400, 800, 1600, 3200),
    algorithms: tuple[str, ...] = ("streamkm++", "cc", "rcc", "onlinecc"),
    k: int = 30,
    seed: int = 0,
    warm_start: bool = False,
) -> dict[str, dict[int, dict[str, float]]]:
    """Figures 8–10: per-point update/query/total time under Poisson query arrivals.

    The paper parameterises by arrival rate lambda; we index results by the
    mean inter-arrival interval ``1 / lambda`` (in points) which is the same
    sweep expressed in more readable units.  Timing figures default to the
    paper's from-scratch query model (``warm_start=False``).
    """
    config = StreamingConfig(k=k, seed=seed, warm_start=warm_start)
    results: dict[str, dict[int, dict[str, float]]] = {name: {} for name in algorithms}
    for mean_interval in mean_intervals:
        schedule = PoissonSchedule.from_mean_interval(mean_interval, seed=seed)
        for name in algorithms:
            run = _run(name, points, config, schedule)
            results[name][mean_interval] = {
                "update_us": run.timing.update_time_per_point() * 1e6,
                "query_us": run.timing.query_time_per_point() * 1e6,
                "total_us": run.timing.total_time_per_point() * 1e6,
                "update_us_per_batch": run.timing.update_time_per_batch() * 1e6,
                "num_queries": float(run.num_queries),
            }
    return results


def threshold_sweep(
    points: np.ndarray,
    thresholds: tuple[float, ...] = (1.2, 2.4, 3.6, 4.8, 6.0),
    k: int = 30,
    query_interval: int = 100,
    seed: int = 0,
    warm_start: bool = False,
) -> dict[float, dict[str, float]]:
    """Figure 11: OnlineCC total update/query time vs. the switch threshold alpha.

    Timing figures default to the paper's from-scratch query model
    (``warm_start=False``).
    """
    config = StreamingConfig(k=k, seed=seed, warm_start=warm_start)
    schedule = FixedIntervalSchedule(query_interval)
    results: dict[float, dict[str, float]] = {}
    for alpha in thresholds:
        run = _run(
            "onlinecc", points, config, schedule, switch_threshold=alpha
        )
        results[alpha] = {
            "update_seconds": run.timing.update_seconds,
            "query_seconds": run.timing.query_seconds,
            "total_seconds": run.timing.total_seconds,
            "final_cost": run.final_cost,
        }
    return results


def query_latency_profile(
    points: np.ndarray,
    algorithms: tuple[str, ...] = ("cc", "rcc"),
    k: int = 10,
    query_interval: int = 1,
    seed: int = 0,
    warm_start: bool = True,
    coreset_size: int | None = None,
) -> dict[str, dict[str, float]]:
    """Per-query latency percentiles under a figure-5-style fixed-interval workload.

    With ``query_interval=1`` (a query after every point) this is the
    query-serving stress test: steady-state latency is dominated by the
    center-extraction path, which is exactly what warm-start refinement
    accelerates.  Returns, per algorithm, the
    :func:`~repro.bench.report.latency_summary` percentiles plus the serving
    counters (warm/cold/drift, cache hits/misses).

    Set ``warm_start=False`` to measure the from-scratch query path (the
    pre-serving-layer behavior) for comparison.
    """
    config = StreamingConfig(
        k=k, coreset_size=coreset_size, seed=seed, warm_start=warm_start
    )
    schedule = FixedIntervalSchedule(query_interval)
    results: dict[str, dict[str, float]] = {}
    for name in algorithms:
        run = _run(name, points, config, schedule)
        row = latency_summary(run.query_latencies)
        row.update(
            {
                "warm": float(run.serving.warm_queries),
                "cold": float(run.serving.cold_queries),
                "drift_fallbacks": float(run.serving.drift_fallbacks),
                "cache_hits": float(run.serving.cache_hits),
                "cache_misses": float(run.serving.cache_misses),
                "final_cost": run.final_cost,
            }
        )
        results[name] = row
    return results


def multi_k_query_costs(
    points: np.ndarray,
    k_values: tuple[int, ...] = (10, 20, 30, 40, 50),
    algorithms: tuple[str, ...] = ("ct", "cc", "rcc", "onlinecc"),
    build_k: int | None = None,
    include_batch: bool = False,
    seed: int = 0,
    n_init: int = 5,
) -> dict[str, dict[int, float]]:
    """Figure-4-style k-sweep served by ONE batched multi-k query per algorithm.

    Unlike :func:`cost_vs_k` — which replays the whole stream once per
    ``(algorithm, k)`` pair so that the *structure* is also built for each
    ``k`` — this driver ingests the stream once per algorithm (with the
    structure sized for ``build_k``, default ``max(k_values)``) and then
    answers the entire sweep from one coreset assembly via
    ``query_multi_k``.  Returns ``{algorithm: {k: cost over the stream}}``,
    with a ``"kmeans++"`` batch baseline when ``include_batch`` is set.
    """
    build = build_k if build_k is not None else max(k_values)
    results: dict[str, dict[int, float]] = {}
    data = np.asarray(points, dtype=np.float64)
    for name in algorithms:
        config = StreamingConfig(k=build, seed=seed, n_init=n_init)
        algorithm = make_algorithm(name, config)
        algorithm.insert_batch(data)
        sweep = algorithm.query_multi_k(k_values)
        results[name] = {
            k: kmeans_cost(data, result.centers) for k, result in sweep.items()
        }
    if include_batch:
        results["kmeans++"] = {}
        for k in k_values:
            batch = weighted_kmeans(points, k, rng=np.random.default_rng(seed))
            results["kmeans++"][k] = kmeans_cost(points, batch.centers)
    return results


def scaling_profile(
    points: np.ndarray,
    shard_counts: tuple[int, ...] = (1, 2, 4),
    backends: tuple[str, ...] = ("thread",),
    algorithm: str = "cc",
    k: int = 20,
    coreset_size: int | None = None,
    routing: str = "round_robin",
    seed: int = 0,
    chunk_size: int = 4096,
    repeats: int = 1,
) -> dict[str, dict[int, dict[str, float]]]:
    """Ingestion-throughput scaling of the sharded engine vs. the 1-shard baseline.

    The stream is ingested in ``chunk_size`` batches with no interleaved
    queries; for parallel backends the timed region ends at the engine's
    :meth:`~repro.parallel.engine.ShardedEngine.flush` barrier, so queued
    work cannot be hidden.  The baseline (and the ``("serial", 1)`` cell) is
    the plain single-structure clusterer, which is what the sharded engine
    must beat; every other cell — including 1-shard cells of parallel
    backends, which isolate pure queue/handoff overhead — runs a real
    :class:`~repro.parallel.engine.ShardedEngine` on that backend.

    Returns ``{backend: {shard_count: {"seconds", "points_per_second",
    "speedup_vs_baseline"}}}``; best-of-``repeats`` wall-clock per cell.
    """
    data = np.asarray(points, dtype=np.float64)
    n = data.shape[0]
    config = StreamingConfig(k=k, coreset_size=coreset_size, seed=seed)

    def build(shards: int, backend: str):
        if shards == 1 and backend == "serial":
            return make_algorithm(algorithm, config)
        from ..parallel.engine import ShardedEngine

        return ShardedEngine(
            config,
            num_shards=shards,
            backend=backend,
            routing=routing,
            structure=algorithm.lower(),
        )

    def measure(shards: int, backend: str) -> float:
        best = float("inf")
        for _ in range(max(1, repeats)):
            clusterer = build(shards, backend)
            try:
                start = time.perf_counter()
                for offset in range(0, n, chunk_size):
                    clusterer.insert_batch(data[offset : offset + chunk_size])
                flush = getattr(clusterer, "flush", None)
                if flush is not None:
                    flush()
                best = min(best, time.perf_counter() - start)
            finally:
                closer = getattr(clusterer, "close", None)
                if closer is not None:
                    closer()
        return best

    baseline_seconds = measure(1, "serial")
    results: dict[str, dict[int, dict[str, float]]] = {}
    for backend in backends:
        results[backend] = {}
        for shards in shard_counts:
            if shards == 1 and backend == "serial":
                seconds = baseline_seconds
            else:
                seconds = measure(shards, backend)
            results[backend][shards] = {
                "seconds": seconds,
                "points_per_second": n / seconds if seconds > 0 else float("inf"),
                "speedup_vs_baseline": baseline_seconds / seconds if seconds > 0 else 0.0,
            }
    return results


def drift_adaptation_curve(
    points: np.ndarray,
    algorithms: tuple[str, ...] = ("cc", "window", "decay"),
    k: int = 10,
    query_interval: int = 500,
    trailing_points: int = 1000,
    seed: int = 0,
    algorithm_options: dict[str, dict] | None = None,
) -> dict[str, dict[int, float]]:
    """Trailing-window cost along a (drifting) stream, per algorithm.

    Replays ``points`` in order, querying every ``query_interval`` points and
    scoring each answer's centers against only the most recent
    ``trailing_points`` of the stream — the regime where full-history
    algorithms pay for remembering stale clusters and the window/decay
    clusterers adapt.  Returns ``{algorithm: {stream position: trailing
    cost}}``.  Per-algorithm option overrides come through
    ``algorithm_options`` (e.g. ``{"window": {"window_buckets": 4}}``).
    """
    data = np.asarray(points, dtype=np.float64)
    options = algorithm_options or {}
    results: dict[str, dict[int, float]] = {}
    for name in algorithms:
        config = StreamingConfig(k=k, seed=seed)
        algorithm = make_algorithm(name, config, **options.get(name, {}))
        curve: dict[int, float] = {}
        try:
            for position in range(query_interval, data.shape[0] + 1, query_interval):
                algorithm.insert_batch(data[position - query_interval : position])
                centers = algorithm.query().centers
                recent = data[max(0, position - trailing_points) : position]
                curve[position] = kmeans_cost(recent, centers)
        finally:
            closer = getattr(algorithm, "close", None)
            if closer is not None:
                closer()
        results[name] = curve
    return results


def soft_membership_profile(
    points: np.ndarray,
    fuzziness_values: tuple[float, ...] = (1.2, 1.5, 2.0, 3.0),
    k: int = 10,
    seed: int = 0,
) -> dict[float, dict[str, float]]:
    """Membership sharpness vs. the fuzziness exponent of the soft clusterer.

    Ingests the stream once per exponent, queries, and summarises the fuzzy
    solution over the query coreset: mean membership entropy (nats; 0 =
    perfectly hard, ``log k`` = uniform), mean max membership, the fuzzy
    objective, and the hard k-means cost of the served centers over the whole
    stream.  Returns ``{fuzziness: {...}}``.
    """
    data = np.asarray(points, dtype=np.float64)
    results: dict[float, dict[str, float]] = {}
    for fuzziness in fuzziness_values:
        config = StreamingConfig(k=k, seed=seed)
        clusterer = make_algorithm("soft", config, fuzziness=fuzziness)
        clusterer.insert_batch(data)
        result = clusterer.query()
        soft = clusterer.last_soft
        memberships = soft.memberships
        with np.errstate(divide="ignore", invalid="ignore"):
            logs = np.where(memberships > 0, np.log(memberships), 0.0)
        entropy = float(-(memberships * logs).sum(axis=1).mean())
        results[float(fuzziness)] = {
            "mean_entropy": entropy,
            "mean_max_membership": float(memberships.max(axis=1).mean()),
            "soft_cost": float(soft.cost),
            "hard_cost": kmeans_cost(data, result.centers),
            "iterations": float(soft.iterations),
        }
    return results


def dataset_table(scale: str = "default") -> list[dict[str, object]]:
    """Table 3: the datasets, their sizes, dimensions, and descriptions."""
    rows: list[dict[str, object]] = []
    for name in dataset_names():
        info = load_dataset(name, scale=scale)
        paper_n, paper_d = PAPER_SIZES[name]
        rows.append(
            {
                "dataset": info.name,
                "num_points": info.num_points,
                "dimension": info.dimension,
                "paper_num_points": paper_n,
                "paper_dimension": paper_d,
                "description": info.description,
            }
        )
    return rows


def memory_table(
    datasets: dict[str, np.ndarray],
    algorithms: tuple[str, ...] = ("streamkm++", "cc", "rcc", "onlinecc"),
    k: int = 30,
    query_interval: int = 100,
    seed: int = 0,
) -> list[dict[str, object]]:
    """Table 4: memory cost (points stored and MB) per dataset per algorithm."""
    config = StreamingConfig(k=k, seed=seed)
    schedule = FixedIntervalSchedule(query_interval)
    rows: list[dict[str, object]] = []
    for dataset_name, points in datasets.items():
        row: dict[str, object] = {"dataset": dataset_name}
        for name in algorithms:
            run = _run(name, points, config, schedule)
            row[f"{name}_points"] = run.memory.points_stored
            row[f"{name}_mb"] = run.memory.megabytes
        rows.append(row)
    return rows


def rcc_tradeoffs(
    points: np.ndarray,
    nesting_depths: tuple[int, ...] = (0, 1, 2, 3),
    k: int = 30,
    bucket_size: int | None = None,
    seed: int = 0,
) -> list[dict[str, float]]:
    """Table 2 (empirical version): RCC behaviour as a function of nesting depth.

    For each nesting depth the stream is ingested bucket-by-bucket, a query is
    issued after every bucket, and we record the maximum coreset level ever
    returned, the stored-point footprint, and the outer merge degree.
    """
    config = StreamingConfig(k=k, coreset_size=bucket_size, seed=seed)
    m = config.bucket_size
    data = np.asarray(points, dtype=np.float64)
    num_buckets = data.shape[0] // m
    rows: list[dict[str, float]] = []
    for depth in nesting_depths:
        constructor = config.make_constructor()
        structure = RecursiveCachedTree(constructor, nesting_depth=depth)
        max_query_level = 0
        for index in range(num_buckets):
            block = data[index * m : (index + 1) * m]
            bucket = Bucket(
                data=WeightedPointSet.from_points(block),
                start=index + 1,
                end=index + 1,
                level=0,
            )
            structure.insert_bucket(bucket)
            result = structure.query_coreset_bucket()
            if result is not None:
                max_query_level = max(max_query_level, result.level)
        rows.append(
            {
                "nesting_depth": float(depth),
                "outer_merge_degree": float(merge_degree_for_order(depth)),
                "max_query_level": float(max_query_level),
                "stored_points": float(structure.stored_points()),
                "num_buckets": float(num_buckets),
            }
        )
    return rows
