"""Per-figure and per-table experiment drivers.

Each function reproduces one artefact from the paper's evaluation (Section 5)
and returns plain dictionaries/lists so benchmarks and examples can print or
assert on them without extra plumbing.  The paper's exact sweep values are the
defaults, but every sweep is parameterisable so the test suite can run reduced
versions quickly.

Mapping to the paper (see also DESIGN.md §3):

* :func:`cost_vs_k`                — Figure 4
* :func:`time_vs_query_interval`   — Figure 5
* :func:`cost_vs_bucket_size`      — Figure 6
* :func:`time_vs_bucket_size`      — Figure 7
* :func:`poisson_queries`          — Figures 8, 9, 10
* :func:`threshold_sweep`          — Figure 11
* :func:`dataset_table`            — Table 3
* :func:`memory_table`             — Table 4
* :func:`rcc_tradeoffs`            — Table 2
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..core.base import StreamingConfig
from ..core.recursive_cache import RecursiveCachedTree, merge_degree_for_order
from ..coreset.bucket import Bucket, WeightedPointSet
from ..data.loaders import PAPER_SIZES, dataset_names, load_dataset
from ..kmeans.batch import weighted_kmeans
from ..kmeans.cost import kmeans_cost
from ..queries.schedule import FixedIntervalSchedule, PoissonSchedule
from .harness import RunResult, StreamingExperiment, run_experiment

__all__ = [
    "DEFAULT_ALGORITHMS",
    "cost_vs_k",
    "time_vs_query_interval",
    "cost_vs_bucket_size",
    "time_vs_bucket_size",
    "poisson_queries",
    "threshold_sweep",
    "dataset_table",
    "memory_table",
    "rcc_tradeoffs",
]

# The algorithm line-up of the paper's figures.
DEFAULT_ALGORITHMS: tuple[str, ...] = ("sequential", "streamkm++", "cc", "rcc", "onlinecc")


def _run(
    algorithm: str,
    points: np.ndarray,
    config: StreamingConfig,
    schedule,
    **kwargs,
) -> RunResult:
    experiment = StreamingExperiment(
        algorithm=algorithm, config=config, schedule=schedule, **kwargs
    )
    return run_experiment(experiment, points)


def cost_vs_k(
    points: np.ndarray,
    k_values: tuple[int, ...] = (10, 20, 30, 40, 50),
    algorithms: tuple[str, ...] = DEFAULT_ALGORITHMS,
    query_interval: int = 100,
    include_batch: bool = True,
    seed: int = 0,
    n_init: int = 5,
) -> dict[str, dict[int, float]]:
    """Figure 4: final k-means cost as a function of the number of clusters.

    Returns ``{algorithm: {k: cost}}``; the batch k-means++ baseline appears
    under the key ``"kmeans++"`` when ``include_batch`` is True.  ``n_init``
    controls the query-time k-means++ restarts (more restarts reduce
    local-optimum variance in the reported costs).
    """
    results: dict[str, dict[int, float]] = {name: {} for name in algorithms}
    if include_batch:
        results["kmeans++"] = {}
    for k in k_values:
        config = StreamingConfig(k=k, seed=seed, n_init=n_init)
        schedule = FixedIntervalSchedule(query_interval)
        for name in algorithms:
            run = _run(name, points, config, schedule)
            results[name][k] = run.final_cost
        if include_batch:
            batch = weighted_kmeans(points, k, rng=np.random.default_rng(seed))
            results["kmeans++"][k] = kmeans_cost(points, batch.centers)
    return results


def time_vs_query_interval(
    points: np.ndarray,
    intervals: tuple[int, ...] = (50, 100, 200, 400, 800, 1600, 3200),
    algorithms: tuple[str, ...] = ("streamkm++", "cc", "rcc", "onlinecc"),
    k: int = 30,
    seed: int = 0,
) -> dict[str, dict[int, float]]:
    """Figure 5: total runtime (seconds) over the stream vs. the query interval q."""
    config = StreamingConfig(k=k, seed=seed)
    results: dict[str, dict[int, float]] = {name: {} for name in algorithms}
    for interval in intervals:
        schedule = FixedIntervalSchedule(interval)
        for name in algorithms:
            run = _run(name, points, config, schedule)
            results[name][interval] = run.timing.total_seconds
    return results


def cost_vs_bucket_size(
    points: np.ndarray,
    bucket_multipliers: tuple[int, ...] = (20, 40, 60, 80, 100),
    algorithms: tuple[str, ...] = ("streamkm++", "cc", "rcc", "onlinecc"),
    k: int = 30,
    query_interval: int = 100,
    seed: int = 0,
) -> dict[str, dict[int, float]]:
    """Figure 6: final k-means cost vs. bucket size m (multiples of k)."""
    results: dict[str, dict[int, float]] = {name: {} for name in algorithms}
    schedule = FixedIntervalSchedule(query_interval)
    for multiplier in bucket_multipliers:
        config = StreamingConfig(k=k, coreset_size=multiplier * k, seed=seed)
        for name in algorithms:
            run = _run(name, points, config, schedule)
            results[name][multiplier] = run.final_cost
    return results


def time_vs_bucket_size(
    points: np.ndarray,
    bucket_multipliers: tuple[int, ...] = (20, 40, 60, 80, 100),
    algorithms: tuple[str, ...] = ("streamkm++", "cc", "rcc", "onlinecc"),
    k: int = 30,
    query_interval: int = 100,
    seed: int = 0,
) -> dict[str, dict[int, dict[str, float]]]:
    """Figure 7: average runtime per point (microseconds) vs. bucket size m.

    Returns ``{algorithm: {multiplier: {"update_us": .., "query_us": .., "total_us": ..}}}``.
    """
    results: dict[str, dict[int, dict[str, float]]] = {name: {} for name in algorithms}
    schedule = FixedIntervalSchedule(query_interval)
    for multiplier in bucket_multipliers:
        config = StreamingConfig(k=k, coreset_size=multiplier * k, seed=seed)
        for name in algorithms:
            run = _run(name, points, config, schedule)
            results[name][multiplier] = {
                "update_us": run.timing.update_time_per_point() * 1e6,
                "query_us": run.timing.query_time_per_point() * 1e6,
                "total_us": run.timing.total_time_per_point() * 1e6,
                "update_us_per_batch": run.timing.update_time_per_batch() * 1e6,
            }
    return results


def poisson_queries(
    points: np.ndarray,
    mean_intervals: tuple[int, ...] = (50, 100, 200, 400, 800, 1600, 3200),
    algorithms: tuple[str, ...] = ("streamkm++", "cc", "rcc", "onlinecc"),
    k: int = 30,
    seed: int = 0,
) -> dict[str, dict[int, dict[str, float]]]:
    """Figures 8–10: per-point update/query/total time under Poisson query arrivals.

    The paper parameterises by arrival rate lambda; we index results by the
    mean inter-arrival interval ``1 / lambda`` (in points) which is the same
    sweep expressed in more readable units.
    """
    config = StreamingConfig(k=k, seed=seed)
    results: dict[str, dict[int, dict[str, float]]] = {name: {} for name in algorithms}
    for mean_interval in mean_intervals:
        schedule = PoissonSchedule.from_mean_interval(mean_interval, seed=seed)
        for name in algorithms:
            run = _run(name, points, config, schedule)
            results[name][mean_interval] = {
                "update_us": run.timing.update_time_per_point() * 1e6,
                "query_us": run.timing.query_time_per_point() * 1e6,
                "total_us": run.timing.total_time_per_point() * 1e6,
                "update_us_per_batch": run.timing.update_time_per_batch() * 1e6,
                "num_queries": float(run.num_queries),
            }
    return results


def threshold_sweep(
    points: np.ndarray,
    thresholds: tuple[float, ...] = (1.2, 2.4, 3.6, 4.8, 6.0),
    k: int = 30,
    query_interval: int = 100,
    seed: int = 0,
) -> dict[float, dict[str, float]]:
    """Figure 11: OnlineCC total update/query time vs. the switch threshold alpha."""
    config = StreamingConfig(k=k, seed=seed)
    schedule = FixedIntervalSchedule(query_interval)
    results: dict[float, dict[str, float]] = {}
    for alpha in thresholds:
        run = _run(
            "onlinecc", points, config, schedule, switch_threshold=alpha
        )
        results[alpha] = {
            "update_seconds": run.timing.update_seconds,
            "query_seconds": run.timing.query_seconds,
            "total_seconds": run.timing.total_seconds,
            "final_cost": run.final_cost,
        }
    return results


def dataset_table(scale: str = "default") -> list[dict[str, object]]:
    """Table 3: the datasets, their sizes, dimensions, and descriptions."""
    rows: list[dict[str, object]] = []
    for name in dataset_names():
        info = load_dataset(name, scale=scale)
        paper_n, paper_d = PAPER_SIZES[name]
        rows.append(
            {
                "dataset": info.name,
                "num_points": info.num_points,
                "dimension": info.dimension,
                "paper_num_points": paper_n,
                "paper_dimension": paper_d,
                "description": info.description,
            }
        )
    return rows


def memory_table(
    datasets: dict[str, np.ndarray],
    algorithms: tuple[str, ...] = ("streamkm++", "cc", "rcc", "onlinecc"),
    k: int = 30,
    query_interval: int = 100,
    seed: int = 0,
) -> list[dict[str, object]]:
    """Table 4: memory cost (points stored and MB) per dataset per algorithm."""
    config = StreamingConfig(k=k, seed=seed)
    schedule = FixedIntervalSchedule(query_interval)
    rows: list[dict[str, object]] = []
    for dataset_name, points in datasets.items():
        row: dict[str, object] = {"dataset": dataset_name}
        for name in algorithms:
            run = _run(name, points, config, schedule)
            row[f"{name}_points"] = run.memory.points_stored
            row[f"{name}_mb"] = run.memory.megabytes
        rows.append(row)
    return rows


def rcc_tradeoffs(
    points: np.ndarray,
    nesting_depths: tuple[int, ...] = (0, 1, 2, 3),
    k: int = 30,
    bucket_size: int | None = None,
    seed: int = 0,
) -> list[dict[str, float]]:
    """Table 2 (empirical version): RCC behaviour as a function of nesting depth.

    For each nesting depth the stream is ingested bucket-by-bucket, a query is
    issued after every bucket, and we record the maximum coreset level ever
    returned, the stored-point footprint, and the outer merge degree.
    """
    config = StreamingConfig(k=k, coreset_size=bucket_size, seed=seed)
    m = config.bucket_size
    data = np.asarray(points, dtype=np.float64)
    num_buckets = data.shape[0] // m
    rows: list[dict[str, float]] = []
    for depth in nesting_depths:
        constructor = config.make_constructor()
        structure = RecursiveCachedTree(constructor, nesting_depth=depth)
        max_query_level = 0
        for index in range(num_buckets):
            block = data[index * m : (index + 1) * m]
            bucket = Bucket(
                data=WeightedPointSet.from_points(block),
                start=index + 1,
                end=index + 1,
                level=0,
            )
            structure.insert_bucket(bucket)
            result = structure.query_coreset_bucket()
            if result is not None:
                max_query_level = max(max_query_level, result.level)
        rows.append(
            {
                "nesting_depth": float(depth),
                "outer_merge_degree": float(merge_degree_for_order(depth)),
                "max_query_level": float(max_query_level),
                "stored_points": float(structure.stored_points()),
                "num_buckets": float(num_buckets),
            }
        )
    return rows
