"""Clustering-accuracy metrics.

The paper's accuracy metric is the k-means cost (within-cluster sum of
squares, SSQ) of the returned centers evaluated on the *entire* point set
observed so far.  This module wraps that plus a couple of auxiliary measures
(cost ratio to a reference solution, center-set distance) used by the tests to
verify that the streaming algorithms track the batch baseline.
"""

from __future__ import annotations

import numpy as np

from ..kmeans.cost import kmeans_cost

__all__ = ["sse", "cost_ratio", "center_set_distance"]


def sse(points: np.ndarray, centers: np.ndarray, weights: np.ndarray | None = None) -> float:
    """Within-cluster sum of squares of ``points`` against ``centers``.

    This is an alias of :func:`repro.kmeans.cost.kmeans_cost` named after the
    paper's SSQ terminology.
    """
    return kmeans_cost(points, centers, weights)


def cost_ratio(
    points: np.ndarray,
    centers: np.ndarray,
    reference_centers: np.ndarray,
    weights: np.ndarray | None = None,
) -> float:
    """Cost of ``centers`` divided by the cost of ``reference_centers``.

    A ratio near 1 means the candidate solution matches the reference (for
    example, a streaming algorithm matching batch k-means++); values below 1
    mean the candidate is actually better on this dataset.
    """
    reference = kmeans_cost(points, reference_centers, weights)
    candidate = kmeans_cost(points, centers, weights)
    if reference <= 0.0:
        return np.inf if candidate > 0.0 else 1.0
    return candidate / reference


def center_set_distance(centers_a: np.ndarray, centers_b: np.ndarray) -> float:
    """Symmetric Hausdorff-style distance between two center sets.

    For each center in one set, the distance to the nearest center of the
    other set is taken; the maximum over both directions is returned.  Used
    in tests to check that repeated queries return stable solutions.
    """
    a = np.asarray(centers_a, dtype=np.float64)
    b = np.asarray(centers_b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("center sets must be 2-D arrays")
    if a.shape[0] == 0 or b.shape[0] == 0:
        raise ValueError("center sets must be non-empty")

    diffs = a[:, None, :] - b[None, :, :]
    sq = np.einsum("ijk,ijk->ij", diffs, diffs)
    a_to_b = np.sqrt(np.min(sq, axis=1)).max()
    b_to_a = np.sqrt(np.min(sq, axis=0)).max()
    return float(max(a_to_b, b_to_a))
