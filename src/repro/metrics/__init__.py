"""Evaluation metrics: timing, memory, and clustering accuracy."""

from .accuracy import center_set_distance, cost_ratio, sse
from .memory import BYTES_PER_VALUE, MemoryUsage, peak
from .timing import Stopwatch, TimingBreakdown, timing_assertions_enabled

__all__ = [
    "center_set_distance",
    "cost_ratio",
    "sse",
    "BYTES_PER_VALUE",
    "MemoryUsage",
    "peak",
    "Stopwatch",
    "TimingBreakdown",
    "timing_assertions_enabled",
]
