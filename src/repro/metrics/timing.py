"""Timing accounting: separate update-time and query-time accumulators.

The paper reports runtime in two parts (Section 5.2): *update time* (the time
to ingest new points) and *query time* (the time to answer cluster-center
queries), each reported both in total over the stream and averaged per point.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = ["TimingBreakdown", "Stopwatch", "timing_assertions_enabled"]


def timing_assertions_enabled() -> bool:
    """Whether wall-clock *assertions* should be enforced on this machine.

    The benchmark suite always measures and records timings, but comparisons
    of wall-clock numbers ("CC is faster than CT", "p99 within 2x") are only
    meaningful when the machine can actually run the two sides comparably.
    On a single-core box, readers, writers, and the measurement loop itself
    all contend for the same CPU, so such comparisons measure the scheduler,
    not the code.  Tests gate their final ``assert`` on this helper — never
    the measurement itself, so results are still exercised and emitted.

    ``REPRO_TIMING_ASSERTS=1`` forces assertions on, ``=0`` forces them off;
    otherwise they are enabled when at least two CPU cores are available to
    this process.
    """
    override = os.environ.get("REPRO_TIMING_ASSERTS")
    if override is not None and override.strip() in {"0", "1"}:
        return override.strip() == "1"
    try:
        cores = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux fallback
        cores = os.cpu_count() or 1
    return cores >= 2


@dataclass
class TimingBreakdown:
    """Accumulated update and query times for one algorithm run.

    All durations are in seconds.  Updates arrive either point-by-point
    (``num_batches`` stays 0) or as timed batches through
    :meth:`add_batch_update`, in which case both per-point and per-batch
    averages are meaningful.
    """

    update_seconds: float = 0.0
    query_seconds: float = 0.0
    num_updates: int = 0
    num_queries: int = 0
    num_batches: int = 0

    @property
    def total_seconds(self) -> float:
        """Update time plus query time."""
        return self.update_seconds + self.query_seconds

    def add_update(self, seconds: float, num_points: int = 1) -> None:
        """Record time spent ingesting ``num_points`` points."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        self.update_seconds += seconds
        self.num_updates += num_points

    def add_batch_update(self, seconds: float, num_points: int) -> None:
        """Record one timed ``insert_batch`` call covering ``num_points`` points."""
        self.add_update(seconds, num_points)
        self.num_batches += 1

    def add_query(self, seconds: float) -> None:
        """Record time spent answering one clustering query."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        self.query_seconds += seconds
        self.num_queries += 1

    def update_time_per_point(self) -> float:
        """Average update time per ingested point (seconds)."""
        if self.num_updates == 0:
            return 0.0
        return self.update_seconds / self.num_updates

    def update_time_per_batch(self) -> float:
        """Average wall-clock time of one ingestion batch (seconds)."""
        if self.num_batches == 0:
            return 0.0
        return self.update_seconds / self.num_batches

    def update_points_per_second(self) -> float:
        """Ingestion throughput over the whole run (points per second)."""
        if self.update_seconds <= 0.0:
            return 0.0
        return self.num_updates / self.update_seconds

    def query_time_per_point(self) -> float:
        """Query time amortised over ingested points (seconds), as in the paper."""
        if self.num_updates == 0:
            return 0.0
        return self.query_seconds / self.num_updates

    def query_time_per_query(self) -> float:
        """Average wall-clock time of a single query (seconds)."""
        if self.num_queries == 0:
            return 0.0
        return self.query_seconds / self.num_queries

    def total_time_per_point(self) -> float:
        """Total (update + query) time amortised per ingested point (seconds)."""
        if self.num_updates == 0:
            return 0.0
        return self.total_seconds / self.num_updates

    def merged_with(self, other: "TimingBreakdown") -> "TimingBreakdown":
        """Sum of two breakdowns (useful when aggregating repeated runs)."""
        return TimingBreakdown(
            update_seconds=self.update_seconds + other.update_seconds,
            query_seconds=self.query_seconds + other.query_seconds,
            num_updates=self.num_updates + other.num_updates,
            num_queries=self.num_queries + other.num_queries,
            num_batches=self.num_batches + other.num_batches,
        )


class Stopwatch:
    """Tiny perf_counter-based stopwatch with a context-manager interface."""

    def __init__(self) -> None:
        self._elapsed = 0.0

    @property
    def elapsed(self) -> float:
        """Total seconds accumulated so far."""
        return self._elapsed

    @contextmanager
    def measure(self):
        """Context manager that adds the block's duration to the stopwatch."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self._elapsed += time.perf_counter() - start

    @staticmethod
    def time_call(func, *args, **kwargs) -> tuple[float, object]:
        """Call ``func`` and return ``(elapsed_seconds, result)``."""
        start = time.perf_counter()
        result = func(*args, **kwargs)
        return time.perf_counter() - start, result
