"""Memory accounting in points and bytes (the paper's Table 4 convention).

The paper measures memory as the number of points stored by the internal data
structures (coreset tree + coreset cache + any online state) and converts to
bytes assuming 8 bytes (a double) per dimension per point.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MemoryUsage", "BYTES_PER_VALUE"]

BYTES_PER_VALUE = 8  # one IEEE-754 double per coordinate, as in the paper


@dataclass(frozen=True)
class MemoryUsage:
    """Snapshot of an algorithm's memory footprint.

    Attributes
    ----------
    points_stored:
        Number of (weighted) points held by the algorithm's state.
    dimension:
        Dimensionality of each point.
    """

    points_stored: int
    dimension: int

    def __post_init__(self) -> None:
        if self.points_stored < 0:
            raise ValueError("points_stored must be non-negative")
        if self.dimension <= 0:
            raise ValueError("dimension must be positive")

    @property
    def bytes_estimate(self) -> int:
        """Estimated bytes: points * dimension * 8."""
        return self.points_stored * self.dimension * BYTES_PER_VALUE

    @property
    def megabytes(self) -> float:
        """Estimated size in binary megabytes, as reported in Table 4."""
        return self.bytes_estimate / (1024.0 * 1024.0)


def peak(usages: list[MemoryUsage]) -> MemoryUsage:
    """The snapshot with the largest point count (peak usage over a run)."""
    if not usages:
        raise ValueError("peak requires at least one snapshot")
    return max(usages, key=lambda usage: usage.points_stored)
