"""Weighted point sets, coreset constructions, and merge-and-reduce primitives."""

from .bucket import Bucket, WeightedPointSet
from .construction import (
    CoresetConfig,
    CoresetConstructor,
    kmeanspp_coreset,
    make_constructor,
    sensitivity_coreset,
    uniform_coreset,
)
from .merge import (
    as_weighted_set,
    covered_range,
    merge_buckets,
    reduce_bucket,
    spans_are_disjoint,
    total_points,
    union_buckets,
)

__all__ = [
    "Bucket",
    "WeightedPointSet",
    "CoresetConfig",
    "CoresetConstructor",
    "kmeanspp_coreset",
    "make_constructor",
    "sensitivity_coreset",
    "uniform_coreset",
    "as_weighted_set",
    "covered_range",
    "merge_buckets",
    "reduce_bucket",
    "spans_are_disjoint",
    "total_points",
    "union_buckets",
]
