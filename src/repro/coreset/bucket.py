"""Weighted point sets ("buckets") — the unit of storage in coreset trees.

A *bucket* in the paper is either a base bucket (m raw stream points, each
with weight 1) or a coreset summarising some contiguous range of base buckets.
Every bucket records its *span* ``[start, end]`` in base-bucket indices
(1-based, inclusive, matching the paper's ``[l, r]`` notation) and its
*level* in the merge hierarchy, which the accuracy analysis (Lemma 1) depends
on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..kernels.dtypes import coerce_storage
from ..kernels.sketch import sketch_for

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..kernels.sketch import Sketcher

__all__ = ["WeightedPointSet", "Bucket", "make_base_buckets"]


@dataclass(frozen=True)
class WeightedPointSet:
    """An immutable weighted set of points in R^d.

    Attributes
    ----------
    points:
        Array of shape ``(n, d)``.  Float32 coordinates are preserved (the
        opt-in low-bandwidth storage dtype); any other dtype is coerced to
        float64.
    weights:
        Array of shape ``(n,)`` with positive weights — always float64, per
        the dtype policy's honest-accumulator rule (weights are summed over
        the whole stream).
    sketch:
        Optional ``(n, s)`` sketched view of ``points`` (``s < d``), carried
        alongside the exact coordinates when the owning constructor sketches
        (see :mod:`repro.kernels.sketch`).  Row ``i`` of the sketch is the
        projection of row ``i`` of ``points``, always float32 (the JL
        distortion dwarfs float32 rounding, so the approximate view takes
        the low-bandwidth dtype unconditionally); merges gather sketch rows
        by sampled index, so a point is projected exactly once, at ingest.
    """

    points: np.ndarray
    weights: np.ndarray
    sketch: np.ndarray | None = None

    def __post_init__(self) -> None:
        pts = coerce_storage(self.points)
        if pts.ndim != 2:
            raise ValueError(f"points must be 2-D, got shape {pts.shape}")
        w = np.asarray(self.weights, dtype=np.float64)
        if w.ndim != 1 or w.shape[0] != pts.shape[0]:
            raise ValueError(
                f"weights must have shape ({pts.shape[0]},), got {w.shape}"
            )
        if np.any(w < 0):
            raise ValueError("weights must be non-negative")
        sk = self.sketch
        if sk is not None:
            sk = np.asarray(sk, dtype=np.float32)
            if sk.ndim != 2 or sk.shape[0] != pts.shape[0]:
                raise ValueError(
                    f"sketch must have shape ({pts.shape[0]}, s), got {sk.shape}"
                )
        object.__setattr__(self, "points", pts)
        object.__setattr__(self, "weights", w)
        object.__setattr__(self, "sketch", sk)

    @classmethod
    def from_points(
        cls, points: np.ndarray, sketch: np.ndarray | None = None
    ) -> "WeightedPointSet":
        """Wrap raw points with unit weights (float32 blocks stay float32)."""
        pts = coerce_storage(points)
        if pts.ndim == 1:
            pts = pts.reshape(1, -1)
        return cls(
            points=pts,
            weights=np.ones(pts.shape[0], dtype=np.float64),
            sketch=sketch,
        )

    @classmethod
    def empty(cls, dimension: int, dtype: np.dtype | type = np.float64) -> "WeightedPointSet":
        """An empty weighted set of the given dimensionality."""
        return cls(
            points=np.empty((0, dimension), dtype=dtype),
            weights=np.empty(0, dtype=np.float64),
        )

    def state_dict(self) -> dict:
        """Checkpoint state: the backing arrays (sketch included), bit-exact.

        Persisting the sketch rows — rather than re-projecting on restore —
        guarantees the restored set is bit-identical regardless of BLAS call
        shapes, at a storage cost of ``s/d`` relative to the points.
        """
        return {"points": self.points, "weights": self.weights, "sketch": self.sketch}

    @classmethod
    def from_state(cls, state: dict) -> "WeightedPointSet":
        """Rebuild from :meth:`state_dict` output (pre-sketch states load cleanly)."""
        return cls(
            points=state["points"],
            weights=state["weights"],
            sketch=state.get("sketch"),
        )

    @property
    def size(self) -> int:
        """Number of (weighted) points stored."""
        return int(self.points.shape[0])

    @property
    def dimension(self) -> int:
        """Dimensionality of the points."""
        return int(self.points.shape[1])

    @property
    def total_weight(self) -> float:
        """Sum of all weights (the number of original points represented)."""
        return float(np.sum(self.weights))

    def union(self, other: "WeightedPointSet") -> "WeightedPointSet":
        """Multiset union of two weighted point sets.

        The sketched view survives the union only when *both* sides carry a
        compatible sketch (all-or-nothing): a half-sketched union would force
        downstream kernels to mix spaces, so it degrades to exact instead.
        """
        if self.size == 0:
            return other
        if other.size == 0:
            return self
        if self.dimension != other.dimension:
            raise ValueError(
                f"dimension mismatch: {self.dimension} vs {other.dimension}"
            )
        return WeightedPointSet(
            points=np.vstack([self.points, other.points]),
            weights=np.concatenate([self.weights, other.weights]),
            sketch=_union_sketches([self.sketch, other.sketch]),
        )

    @staticmethod
    def union_all(
        sets: list["WeightedPointSet"], dimension: int | None = None
    ) -> "WeightedPointSet":
        """Union an arbitrary list of weighted point sets.

        Dimension handling is uniform across all inputs: every set (empty or
        not) must agree on the dimensionality, and a mismatch raises
        ``ValueError`` just as :meth:`union` does.  An empty *list* needs the
        explicit ``dimension`` argument, since there is nothing to infer from.
        """
        dims = {s.dimension for s in sets}
        if dimension is not None:
            dims.add(int(dimension))
        if len(dims) > 1:
            raise ValueError(f"dimension mismatch across sets: {sorted(dims)}")
        if not dims:
            raise ValueError(
                "union_all of an empty list needs an explicit dimension"
            )
        non_empty = [s for s in sets if s.size > 0]
        if not non_empty:
            return WeightedPointSet.empty(dims.pop())
        if len(non_empty) == 1:
            return non_empty[0]
        return WeightedPointSet(
            points=np.vstack([s.points for s in non_empty]),
            weights=np.concatenate([s.weights for s in non_empty]),
            sketch=_union_sketches([s.sketch for s in non_empty]),
        )


def _union_sketches(sketches: list[np.ndarray | None]) -> np.ndarray | None:
    """Stack per-set sketches, all-or-nothing: any missing/mismatched → None."""
    if any(sk is None for sk in sketches):
        return None
    if len({sk.shape[1] for sk in sketches}) != 1:  # type: ignore[union-attr]
        return None
    return np.vstack(sketches)  # type: ignore[arg-type]


@dataclass(frozen=True)
class Bucket:
    """A weighted point set annotated with its span and coreset level.

    Attributes
    ----------
    data:
        The stored (possibly summarised) points.
    start:
        First base-bucket index covered (1-based, inclusive).
    end:
        Last base-bucket index covered (1-based, inclusive).
    level:
        Coreset level: 0 for raw base buckets, and one more than the maximum
        level of its inputs for every merge (Definition 2 in the paper).
    """

    data: WeightedPointSet
    start: int
    end: int
    level: int = 0

    def __post_init__(self) -> None:
        if self.start <= 0 or self.end <= 0:
            raise ValueError("bucket span indices are 1-based and must be positive")
        if self.end < self.start:
            raise ValueError(f"invalid span [{self.start}, {self.end}]")
        if self.level < 0:
            raise ValueError("level must be non-negative")

    @property
    def span(self) -> tuple[int, int]:
        """The ``[start, end]`` range of base buckets this bucket summarises."""
        return (self.start, self.end)

    @property
    def num_base_buckets(self) -> int:
        """How many base buckets the span covers."""
        return self.end - self.start + 1

    @property
    def size(self) -> int:
        """Number of stored points."""
        return self.data.size

    def state_dict(self) -> dict:
        """Checkpoint state: span metadata plus the weighted point set."""
        return {
            "start": self.start,
            "end": self.end,
            "level": self.level,
            "data": self.data.state_dict(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "Bucket":
        """Rebuild from :meth:`state_dict` output."""
        return cls(
            data=WeightedPointSet.from_state(state["data"]),
            start=int(state["start"]),
            end=int(state["end"]),
            level=int(state["level"]),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"Bucket(span=[{self.start},{self.end}], level={self.level}, "
            f"size={self.size})"
        )


def make_base_buckets(
    blocks: list[np.ndarray], start: int, sketcher: "Sketcher | None" = None
) -> list["Bucket"]:
    """Wrap point blocks as consecutive base buckets starting at index ``start``.

    The shared tail of every batch-ingestion path: each ``(m, d)`` block from
    :meth:`~repro.core.buffer.BucketBuffer.take_full_blocks` becomes a
    level-0 bucket with the next base-bucket index, preserving zero-copy
    (``WeightedPointSet.from_points`` copies neither float64 nor float32
    arrays).  With a ``sketcher`` each block is also projected — exactly once
    per point, here at ingest — and the sketched view rides along in the
    bucket's :class:`WeightedPointSet`.
    """
    return [
        Bucket(
            data=WeightedPointSet.from_points(block, sketch=sketch_for(sketcher, block)),
            start=start + offset,
            end=start + offset,
            level=0,
        )
        for offset, block in enumerate(blocks)
    ]
