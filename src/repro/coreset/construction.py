"""Coreset construction for the k-means metric.

The default construction is *sensitivity (importance) sampling* in the style
of Feldman, Schmidt & Sohler (SODA 2013), which the paper cites as the best
known construction (Theorem 2): seed a bicriteria solution with k-means++,
compute an upper bound on each point's sensitivity, sample ``m`` points with
probability proportional to sensitivity, and re-weight so that cost estimates
remain unbiased.  The result is a weighted set of ``m`` points that is a
(k, eps)-coreset with high probability for m = O(k / eps^2).

Two alternative constructions are provided for ablation benchmarks:

* ``uniform`` — sample m points uniformly (no sensitivity), re-weighted.
* ``kmeanspp`` — run k-means++ to pick m points and assign each input point's
  weight to its nearest representative (the construction used by the original
  streamkm++ paper's coreset trees).

All constructions consume and produce :class:`~repro.coreset.bucket.WeightedPointSet`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Literal

import numpy as np

from ..kmeans.cost import assign_points
from ..kmeans.kmeanspp import kmeanspp_seeding
from .bucket import WeightedPointSet

__all__ = [
    "CoresetConfig",
    "CoresetConstructor",
    "span_keyed_rng",
    "sensitivity_coreset",
    "uniform_coreset",
    "kmeanspp_coreset",
    "make_constructor",
]

CoresetMethod = Literal["sensitivity", "uniform", "kmeanspp"]


def span_keyed_rng(entropy: int, level: int, start: int, end: int) -> np.random.Generator:
    """Deterministic generator keyed by a merge's span and level.

    The single source of truth for the span-keyed randomness scheme: every
    constructor (k-means and the k-median adapter) derives merge randomness
    through this function, so batch and per-point ingestion stay equivalent
    across all of them.
    """
    return np.random.default_rng(
        np.random.SeedSequence(entropy=[int(entropy), int(level), int(start), int(end)])
    )


@dataclass(frozen=True)
class CoresetConfig:
    """Parameters shared by all coreset constructions.

    Attributes
    ----------
    k:
        Number of clusters the coreset must preserve costs for.
    coreset_size:
        Target number of points ``m`` in each constructed coreset.  The paper
        uses ``m = 20 * k`` by default (Section 5.2).
    method:
        Which construction to use: ``"sensitivity"`` (default, the
        Feldman–Schmidt–Sohler style importance sampling), ``"uniform"``, or
        ``"kmeanspp"``.
    seed_centers:
        Number of centers used for the bicriteria solution inside sensitivity
        sampling.  Defaults to ``k`` when None.
    """

    k: int
    coreset_size: int
    method: CoresetMethod = "sensitivity"
    seed_centers: int | None = None

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")
        if self.coreset_size <= 0:
            raise ValueError(f"coreset_size must be positive, got {self.coreset_size}")
        if self.method not in ("sensitivity", "uniform", "kmeanspp"):
            raise ValueError(f"unknown coreset method {self.method!r}")
        if self.seed_centers is not None and self.seed_centers <= 0:
            raise ValueError("seed_centers must be positive when given")


def _passthrough_if_small(data: WeightedPointSet, m: int) -> WeightedPointSet | None:
    """Return the input unchanged when it already fits within the target size."""
    if data.size <= m:
        return data
    return None


def sensitivity_coreset(
    data: WeightedPointSet,
    k: int,
    m: int,
    rng: np.random.Generator,
    seed_centers: int | None = None,
) -> WeightedPointSet:
    """Importance-sampling coreset of size ``m`` for the k-means metric.

    The sensitivity upper bound for point ``x`` assigned to bicriteria center
    ``b(x)`` with cluster weight ``W(b(x))`` and global cost ``C`` is

        s(x) = w(x) * d^2(x, B) / C  +  w(x) / W(b(x))

    (up to constant factors).  Points are sampled with probability
    ``p(x) = s(x) / sum(s)`` and given weight ``w(x) / (m * p(x))`` so that
    the weighted cost of the sample is an unbiased estimator of the cost of
    the input for every candidate center set.
    """
    small = _passthrough_if_small(data, m)
    if small is not None:
        return small

    pts = data.points
    w = data.weights
    n_seeds = seed_centers if seed_centers is not None else k
    n_seeds = min(n_seeds, data.size)

    centers = kmeanspp_seeding(pts, n_seeds, weights=w, rng=rng)
    labels, sq = assign_points(pts, centers)

    weighted_sq = w * sq
    total_cost = float(np.sum(weighted_sq))

    cluster_weight = np.zeros(centers.shape[0], dtype=np.float64)
    np.add.at(cluster_weight, labels, w)
    # Every occupied cluster has positive weight; guard unoccupied ones anyway.
    cluster_weight = np.maximum(cluster_weight, np.finfo(np.float64).tiny)

    if total_cost <= 0.0:
        # Degenerate case: every point coincides with a seed.  Sensitivities
        # collapse to the per-cluster share.
        sensitivities = w / cluster_weight[labels]
    else:
        sensitivities = weighted_sq / total_cost + w / cluster_weight[labels]

    cdf = np.cumsum(sensitivities)
    probabilities = sensitivities / cdf[-1]

    indices = _sample_from_cdf(rng, cdf, m)
    sample_points = pts[indices]
    sample_weights = w[indices] / (m * probabilities[indices])

    return WeightedPointSet(points=sample_points, weights=sample_weights)


def _sample_from_cdf(rng: np.random.Generator, cdf: np.ndarray, size: int) -> np.ndarray:
    """Draw ``size`` indices with replacement, proportional to the CDF increments."""
    draws = np.searchsorted(cdf, rng.random(size) * cdf[-1], side="right")
    return np.minimum(draws, cdf.shape[0] - 1)


def uniform_coreset(
    data: WeightedPointSet,
    k: int,
    m: int,
    rng: np.random.Generator,
) -> WeightedPointSet:
    """Uniform-sampling "coreset" (no sensitivity), used as an ablation baseline."""
    small = _passthrough_if_small(data, m)
    if small is not None:
        return small
    w = data.weights
    if np.all(w == w[0]):
        # Equal weights (e.g. any union of base buckets): sampling reduces to
        # a plain integer draw, skipping the CDF entirely.
        indices = rng.integers(0, data.size, size=m)
    else:
        indices = _sample_from_cdf(rng, np.cumsum(w), m)
    sample_points = data.points[indices]
    sample_weights = np.full(m, data.total_weight / m, dtype=np.float64)
    return WeightedPointSet(points=sample_points, weights=sample_weights)


def kmeanspp_coreset(
    data: WeightedPointSet,
    k: int,
    m: int,
    rng: np.random.Generator,
) -> WeightedPointSet:
    """Coreset of ``m`` k-means++ representatives carrying their cluster weights.

    This mirrors the construction used by streamkm++'s coreset trees: run
    k-means++ D² sampling to pick ``m`` representatives and move each input
    point's weight onto its nearest representative.
    """
    small = _passthrough_if_small(data, m)
    if small is not None:
        return small
    representatives = kmeanspp_seeding(data.points, m, weights=data.weights, rng=rng)
    labels, _ = assign_points(data.points, representatives)
    rep_weights = np.zeros(representatives.shape[0], dtype=np.float64)
    np.add.at(rep_weights, labels, data.weights)
    occupied = rep_weights > 0
    return WeightedPointSet(
        points=representatives[occupied],
        weights=rep_weights[occupied],
    )


class CoresetConstructor:
    """Callable object that builds coresets according to a :class:`CoresetConfig`.

    Two sources of randomness coexist:

    * a shared scratch :class:`numpy.random.Generator` (``build``), used for
      query-time constructions, where the calling order is the natural key to
      reproducibility; and
    * *span-keyed* streams (``build_for_span``), used for tree merges.  The
      randomness of a merge is derived deterministically from the constructor
      seed and the merged bucket's ``(level, start, end)``, so a merge's
      output depends only on its inputs — not on how many other merges or
      queries ran before it.  This makes batch ingestion bit-identical to
      per-point ingestion and keeps the update path independent of the query
      schedule.
    """

    def __init__(self, config: CoresetConfig, seed: int | None = None) -> None:
        self.config = config
        self._rng = np.random.default_rng(seed)
        # Root entropy for the span-keyed streams.  With no seed given, draw
        # fresh entropy once so that merge randomness is still internally
        # consistent for the lifetime of this constructor.
        self._entropy = int(np.random.SeedSequence().entropy) if seed is None else int(seed)
        self._builders: dict[str, Callable[..., WeightedPointSet]] = {
            "sensitivity": self._build_sensitivity,
            "uniform": self._build_uniform,
            "kmeanspp": self._build_kmeanspp,
        }

    @property
    def coreset_size(self) -> int:
        """Target coreset size ``m``."""
        return self.config.coreset_size

    def rng_for_span(self, level: int, start: int, end: int) -> np.random.Generator:
        """Deterministic generator for the merge producing span ``[start, end]``."""
        return span_keyed_rng(self._entropy, level, start, end)

    def build(self, data: WeightedPointSet) -> WeightedPointSet:
        """Construct a coreset of the configured size from ``data``.

        Uses the shared scratch generator: repeated calls advance one stream.
        """
        if data.size == 0:
            return data
        return self._builders[self.config.method](data, self._rng)

    __call__ = build

    def build_for_span(
        self, data: WeightedPointSet, *, level: int, start: int, end: int
    ) -> WeightedPointSet:
        """Construct a coreset whose randomness is keyed by ``(level, start, end)``.

        Used for tree merges so that the result is a pure function of the
        constructor seed, the span metadata, and the input data.
        """
        if data.size == 0:
            return data
        return self._builders[self.config.method](data, self.rng_for_span(level, start, end))

    def state_dict(self) -> dict:
        """Checkpoint state: the span-key entropy and the scratch-stream position."""
        return {"entropy": self._entropy, "rng": self._rng.bit_generator.state}

    def load_state(self, state: dict) -> None:
        """Restore randomness streams from :meth:`state_dict` output.

        Restoring the entropy keeps span-keyed merges identical and restoring
        the scratch generator keeps query-time builds identical, so a resumed
        constructor produces bit-for-bit the coresets of an uninterrupted one.
        """
        from ..checkpoint.state import rng_from_state

        self._entropy = int(state["entropy"])
        self._rng = rng_from_state(state["rng"])

    def _build_sensitivity(
        self, data: WeightedPointSet, rng: np.random.Generator
    ) -> WeightedPointSet:
        return sensitivity_coreset(
            data,
            self.config.k,
            self.config.coreset_size,
            rng,
            seed_centers=self.config.seed_centers,
        )

    def _build_uniform(
        self, data: WeightedPointSet, rng: np.random.Generator
    ) -> WeightedPointSet:
        return uniform_coreset(data, self.config.k, self.config.coreset_size, rng)

    def _build_kmeanspp(
        self, data: WeightedPointSet, rng: np.random.Generator
    ) -> WeightedPointSet:
        return kmeanspp_coreset(data, self.config.k, self.config.coreset_size, rng)


def make_constructor(
    k: int,
    coreset_size: int,
    method: CoresetMethod = "sensitivity",
    seed: int | None = None,
) -> CoresetConstructor:
    """Convenience factory for a :class:`CoresetConstructor`."""
    return CoresetConstructor(
        CoresetConfig(k=k, coreset_size=coreset_size, method=method), seed=seed
    )
