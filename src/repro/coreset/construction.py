"""Coreset construction for the k-means metric.

The default construction is *sensitivity (importance) sampling* in the style
of Feldman, Schmidt & Sohler (SODA 2013), which the paper cites as the best
known construction (Theorem 2): seed a bicriteria solution with k-means++,
compute an upper bound on each point's sensitivity, sample ``m`` points with
probability proportional to sensitivity, and re-weight so that cost estimates
remain unbiased.  The result is a weighted set of ``m`` points that is a
(k, eps)-coreset with high probability for m = O(k / eps^2).

Two alternative constructions are provided for ablation benchmarks:

* ``uniform`` — sample m points uniformly (no sensitivity), re-weighted.
* ``kmeanspp`` — run k-means++ to pick m points and assign each input point's
  weight to its nearest representative (the construction used by the original
  streamkm++ paper's coreset trees).

All constructions consume and produce :class:`~repro.coreset.bucket.WeightedPointSet`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Literal

import numpy as np

from ..kernels.distance import pooled_row_norms
from ..kernels.scatter import weighted_bincount
from ..kernels.sketch import SKETCH_KINDS, Sketcher
from ..kernels.workspace import Workspace
from ..kmeans.cost import assign_points
from ..kmeans.kmeanspp import kmeanspp_seeding
from .bucket import WeightedPointSet

__all__ = [
    "CoresetConfig",
    "CoresetConstructor",
    "span_keyed_rng",
    "sensitivity_coreset",
    "uniform_coreset",
    "kmeanspp_coreset",
    "make_constructor",
]

CoresetMethod = Literal["sensitivity", "uniform", "kmeanspp"]


def span_keyed_rng(entropy: int, level: int, start: int, end: int) -> np.random.Generator:
    """Deterministic generator keyed by a merge's span and level.

    The single source of truth for the span-keyed randomness scheme: every
    constructor (k-means and the k-median adapter) derives merge randomness
    through this function, so batch and per-point ingestion stay equivalent
    across all of them.
    """
    return np.random.default_rng(
        np.random.SeedSequence(entropy=[int(entropy), int(level), int(start), int(end)])
    )


@dataclass(frozen=True)
class CoresetConfig:
    """Parameters shared by all coreset constructions.

    Attributes
    ----------
    k:
        Number of clusters the coreset must preserve costs for.
    coreset_size:
        Target number of points ``m`` in each constructed coreset.  The paper
        uses ``m = 20 * k`` by default (Section 5.2).
    method:
        Which construction to use: ``"sensitivity"`` (default, the
        Feldman–Schmidt–Sohler style importance sampling), ``"uniform"``, or
        ``"kmeanspp"``.
    seed_centers:
        Number of centers used for the bicriteria solution inside sensitivity
        sampling.  Defaults to ``k`` when None.
    sketch_dim:
        Opt-in Johnson–Lindenstrauss sketching: when set, ingest projects
        every point into this many dimensions and the construction's seeding,
        assignment, and sensitivity scoring run in the sketched space (the
        sampled output points stay exact).  ``None`` (default) disables
        sketching; streams whose dimension is ``<= sketch_dim`` are never
        projected.
    sketch_kind:
        Which JL transform to use: ``"gaussian"`` (dense, default) or
        ``"countsketch"`` (sparse ±1).  See :mod:`repro.kernels.sketch`.
    """

    k: int
    coreset_size: int
    method: CoresetMethod = "sensitivity"
    seed_centers: int | None = None
    sketch_dim: int | None = None
    sketch_kind: str = "gaussian"

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")
        if self.coreset_size <= 0:
            raise ValueError(f"coreset_size must be positive, got {self.coreset_size}")
        if self.method not in ("sensitivity", "uniform", "kmeanspp"):
            raise ValueError(f"unknown coreset method {self.method!r}")
        if self.seed_centers is not None and self.seed_centers <= 0:
            raise ValueError("seed_centers must be positive when given")
        if self.sketch_dim is not None and self.sketch_dim <= 0:
            raise ValueError("sketch_dim must be positive when given")
        if self.sketch_kind not in SKETCH_KINDS:
            raise ValueError(
                f"unknown sketch kind {self.sketch_kind!r}; available: {SKETCH_KINDS}"
            )


def _passthrough_if_small(data: WeightedPointSet, m: int) -> WeightedPointSet | None:
    """Return the input unchanged when it already fits within the target size."""
    if data.size <= m:
        return data
    return None


def sensitivity_coreset(
    data: WeightedPointSet,
    k: int,
    m: int,
    rng: np.random.Generator,
    seed_centers: int | None = None,
    workspace: Workspace | None = None,
) -> WeightedPointSet:
    """Importance-sampling coreset of size ``m`` for the k-means metric.

    The sensitivity upper bound for point ``x`` assigned to bicriteria center
    ``b(x)`` with cluster weight ``W(b(x))`` and global cost ``C`` is

        s(x) = w(x) * d^2(x, B) / C  +  w(x) / W(b(x))

    (up to constant factors).  Points are sampled with probability
    ``p(x) = s(x) / sum(s)`` and given weight ``w(x) / (m * p(x))`` so that
    the weighted cost of the sample is an unbiased estimator of the cost of
    the input for every candidate center set.

    The merge hot path: with a ``workspace`` (every
    :class:`CoresetConstructor` owns one) all seeding, assignment, and
    sampling scratch is pooled, so a steady-state merge of fixed-shape
    buckets allocates only its output arrays.

    When ``data`` carries a sketched view, the bicriteria seeding and the
    sensitivity scores are computed in the sketched space (the JL transform
    approximately preserves the squared distances the scores are built from)
    — but the *sampled output points stay exact*, and the ``w/(m·p)``
    re-weighting keeps the weighted sample an unbiased cost estimator under
    *any* sampling distribution, so sketching perturbs only the variance of
    the estimate, never its expectation.
    """
    small = _passthrough_if_small(data, m)
    if small is not None:
        return small

    pts = data.points
    solve = data.sketch if data.sketch is not None else pts
    w = data.weights
    n = data.size
    n_seeds = seed_centers if seed_centers is not None else k
    n_seeds = min(n_seeds, n)

    ws = workspace if workspace is not None else Workspace()
    # One norm pass shared by the seeding rounds and the assignment, in the
    # points' storage dtype (float32 merges run float32 matvecs).
    pts_sq = pooled_row_norms(solve, ws, "sens.pts_sq")

    # The seeding loop maintains each point's nearest seed and squared
    # distance incrementally, so no separate assignment GEMM is needed.
    centers, labels, sq = kmeanspp_seeding(
        solve,
        n_seeds,
        weights=w,
        rng=rng,
        points_sq=pts_sq,
        workspace=ws,
        with_assignment=True,
    )

    weighted_sq = np.multiply(w, sq, out=ws.buffer("sens.weighted_sq", n))
    total_cost = float(np.sum(weighted_sq))

    # Every occupied cluster has positive weight; guard unoccupied ones anyway.
    cluster_weight = weighted_bincount(labels, w, centers.shape[0])
    np.maximum(cluster_weight, np.finfo(np.float64).tiny, out=cluster_weight)

    share = np.take(cluster_weight, labels, out=ws.buffer("sens.share", n))
    np.divide(w, share, out=share)
    sensitivities = ws.buffer("sens.scores", n)
    if total_cost <= 0.0:
        # Degenerate case: every point coincides with a seed.  Sensitivities
        # collapse to the per-cluster share.
        sensitivities[:] = share
    else:
        np.divide(weighted_sq, total_cost, out=sensitivities)
        sensitivities += share

    cdf = sensitivities.cumsum(out=ws.buffer("sens.cdf", n))

    indices = _sample_from_cdf(rng, cdf, m, workspace=ws)
    sample_points = pts[indices]
    # w[indices] / (m * p[indices]) with p = sensitivities / cdf[-1].
    sampled_p = np.take(sensitivities, indices, out=ws.buffer("sens.sampled_p", m))
    sampled_p /= float(cdf[-1])
    sample_weights = w[indices]
    sample_weights /= m * sampled_p

    return WeightedPointSet(
        points=sample_points,
        weights=sample_weights,
        sketch=data.sketch[indices] if data.sketch is not None else None,
    )


def _sample_from_cdf(
    rng: np.random.Generator,
    cdf: np.ndarray,
    size: int,
    workspace: Workspace | None = None,
) -> np.ndarray:
    """Draw ``size`` indices with replacement, proportional to the CDF increments."""
    if workspace is None:
        u = rng.random(size)
    else:
        u = rng.random(out=workspace.buffer("sample.u", size))
    u *= cdf[-1]
    draws = cdf.searchsorted(u, side="right")
    return np.minimum(draws, cdf.shape[0] - 1, out=draws)


def uniform_coreset(
    data: WeightedPointSet,
    k: int,
    m: int,
    rng: np.random.Generator,
) -> WeightedPointSet:
    """Uniform-sampling "coreset" (no sensitivity), used as an ablation baseline."""
    small = _passthrough_if_small(data, m)
    if small is not None:
        return small
    w = data.weights
    if np.all(w == w[0]):
        # Equal weights (e.g. any union of base buckets): sampling reduces to
        # a plain integer draw, skipping the CDF entirely.
        indices = rng.integers(0, data.size, size=m)
    else:
        indices = _sample_from_cdf(rng, np.cumsum(w), m)
    sample_points = data.points[indices]
    sample_weights = np.full(m, data.total_weight / m, dtype=np.float64)
    return WeightedPointSet(
        points=sample_points,
        weights=sample_weights,
        sketch=data.sketch[indices] if data.sketch is not None else None,
    )


def kmeanspp_coreset(
    data: WeightedPointSet,
    k: int,
    m: int,
    rng: np.random.Generator,
    workspace: Workspace | None = None,
) -> WeightedPointSet:
    """Coreset of ``m`` k-means++ representatives carrying their cluster weights.

    This mirrors the construction used by streamkm++'s coreset trees: run
    k-means++ D² sampling to pick ``m`` representatives and move each input
    point's weight onto its nearest representative (a ``bincount`` scatter).

    Every representative IS an input row, so the sketched variant selects
    and assigns in the sketched space but emits the *exact* rows the chosen
    sketch rows came from (``with_indices`` maps one to the other).
    """
    small = _passthrough_if_small(data, m)
    if small is not None:
        return small
    ws = workspace if workspace is not None else Workspace()
    if data.sketch is not None:
        solve = data.sketch
        pts_sq = pooled_row_norms(solve, ws, "kpc.pts_sq")
        representatives, rep_indices = kmeanspp_seeding(
            solve, m, weights=data.weights, rng=rng, points_sq=pts_sq,
            workspace=ws, with_indices=True,
        )
        labels, _ = assign_points(
            solve, representatives, points_sq=pts_sq, workspace=ws
        )
        rep_weights = weighted_bincount(labels, data.weights, representatives.shape[0])
        occupied = rep_weights > 0
        chosen = rep_indices[occupied]
        return WeightedPointSet(
            points=data.points[chosen],
            weights=rep_weights[occupied],
            sketch=solve[chosen],
        )
    pts_sq = pooled_row_norms(data.points, ws, "kpc.pts_sq")
    representatives = kmeanspp_seeding(
        data.points, m, weights=data.weights, rng=rng, points_sq=pts_sq, workspace=ws
    )
    labels, _ = assign_points(
        data.points, representatives, points_sq=pts_sq, workspace=ws
    )
    rep_weights = weighted_bincount(labels, data.weights, representatives.shape[0])
    occupied = rep_weights > 0
    return WeightedPointSet(
        points=representatives[occupied],
        weights=rep_weights[occupied],
    )


class CoresetConstructor:
    """Callable object that builds coresets according to a :class:`CoresetConfig`.

    Two sources of randomness coexist:

    * a shared scratch :class:`numpy.random.Generator` (``build``), used for
      query-time constructions, where the calling order is the natural key to
      reproducibility; and
    * *span-keyed* streams (``build_for_span``), used for tree merges.  The
      randomness of a merge is derived deterministically from the constructor
      seed and the merged bucket's ``(level, start, end)``, so a merge's
      output depends only on its inputs — not on how many other merges or
      queries ran before it.  This makes batch ingestion bit-identical to
      per-point ingestion and keeps the update path independent of the query
      schedule.
    """

    def __init__(self, config: CoresetConfig, seed: int | None = None) -> None:
        self.config = config
        self._rng = np.random.default_rng(seed)
        # Root entropy for the span-keyed streams.  With no seed given, draw
        # fresh entropy once so that merge randomness is still internally
        # consistent for the lifetime of this constructor.
        self._entropy = int(np.random.SeedSequence().entropy) if seed is None else int(seed)
        # Scratch pool shared by every merge this constructor performs: merge
        # inputs have bounded shape (<= r*m points), so after the first merge
        # the steady state allocates only output arrays.  Pure scratch — it
        # never appears in state_dict() and never crosses process boundaries.
        self._workspace = Workspace()
        # The sketcher's matrix is a pure function of (entropy, dimension),
        # so it carries no checkpoint state of its own: restoring the
        # entropy below rebuilds bit-identical projections.
        self._sketcher = (
            Sketcher(config.sketch_dim, kind=config.sketch_kind, entropy=self._entropy)
            if config.sketch_dim is not None
            else None
        )
        self._builders: dict[str, Callable[..., WeightedPointSet]] = {
            "sensitivity": self._build_sensitivity,
            "uniform": self._build_uniform,
            "kmeanspp": self._build_kmeanspp,
        }

    @property
    def workspace(self) -> Workspace:
        """The constructor's scratch-buffer pool (instrumentation/tests)."""
        return self._workspace

    @property
    def sketcher(self) -> Sketcher | None:
        """The JL sketcher ingest paths project with (None when sketching is off)."""
        return self._sketcher

    @property
    def coreset_size(self) -> int:
        """Target coreset size ``m``."""
        return self.config.coreset_size

    def rng_for_span(self, level: int, start: int, end: int) -> np.random.Generator:
        """Deterministic generator for the merge producing span ``[start, end]``."""
        return span_keyed_rng(self._entropy, level, start, end)

    def build(self, data: WeightedPointSet) -> WeightedPointSet:
        """Construct a coreset of the configured size from ``data``.

        Uses the shared scratch generator: repeated calls advance one stream.
        """
        if data.size == 0:
            return data
        return self._builders[self.config.method](data, self._rng)

    __call__ = build

    def build_for_span(
        self, data: WeightedPointSet, *, level: int, start: int, end: int
    ) -> WeightedPointSet:
        """Construct a coreset whose randomness is keyed by ``(level, start, end)``.

        Used for tree merges so that the result is a pure function of the
        constructor seed, the span metadata, and the input data.
        """
        if data.size == 0:
            return data
        return self._builders[self.config.method](data, self.rng_for_span(level, start, end))

    def state_dict(self) -> dict:
        """Checkpoint state: the span-key entropy and the scratch-stream position."""
        return {"entropy": self._entropy, "rng": self._rng.bit_generator.state}

    def load_state(self, state: dict) -> None:
        """Restore randomness streams from :meth:`state_dict` output.

        Restoring the entropy keeps span-keyed merges identical and restoring
        the scratch generator keeps query-time builds identical, so a resumed
        constructor produces bit-for-bit the coresets of an uninterrupted one.
        """
        from ..checkpoint.state import rng_from_state

        self._entropy = int(state["entropy"])
        self._rng = rng_from_state(state["rng"])
        if self._sketcher is not None:
            self._sketcher.reseed(self._entropy)

    def _build_sensitivity(
        self, data: WeightedPointSet, rng: np.random.Generator
    ) -> WeightedPointSet:
        return sensitivity_coreset(
            data,
            self.config.k,
            self.config.coreset_size,
            rng,
            seed_centers=self.config.seed_centers,
            workspace=self._workspace,
        )

    def _build_uniform(
        self, data: WeightedPointSet, rng: np.random.Generator
    ) -> WeightedPointSet:
        return uniform_coreset(data, self.config.k, self.config.coreset_size, rng)

    def _build_kmeanspp(
        self, data: WeightedPointSet, rng: np.random.Generator
    ) -> WeightedPointSet:
        return kmeanspp_coreset(
            data, self.config.k, self.config.coreset_size, rng,
            workspace=self._workspace,
        )


def make_constructor(
    k: int,
    coreset_size: int,
    method: CoresetMethod = "sensitivity",
    seed: int | None = None,
) -> CoresetConstructor:
    """Convenience factory for a :class:`CoresetConstructor`."""
    return CoresetConstructor(
        CoresetConfig(k=k, coreset_size=coreset_size, method=method), seed=seed
    )
