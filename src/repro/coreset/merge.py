"""Merge-and-reduce operations on buckets (the Bentley–Saxe style step).

Merging coresets is the single primitive every streaming algorithm in the
paper builds on: take several buckets, union their weighted points, construct
a fresh coreset of the union, and record the new span and level.  Observation
1 guarantees the union of coresets is a coreset of the union of their
underlying point sets; Observation 2 (and Lemma 1) track how the
approximation error compounds with the level.
"""

from __future__ import annotations

import numpy as np

from .bucket import Bucket, WeightedPointSet
from .construction import CoresetConstructor

__all__ = ["union_buckets", "merge_buckets", "reduce_bucket"]


def _validate_contiguous(buckets: list[Bucket]) -> list[Bucket]:
    """Sort buckets by span and check that they cover a contiguous range."""
    ordered = sorted(buckets, key=lambda b: b.start)
    for previous, current in zip(ordered, ordered[1:]):
        if current.start != previous.end + 1:
            raise ValueError(
                "buckets must cover a contiguous range of base buckets; "
                f"gap between span [{previous.start},{previous.end}] and "
                f"[{current.start},{current.end}]"
            )
    return ordered


def union_buckets(buckets: list[Bucket]) -> Bucket:
    """Union the points of contiguous buckets without re-summarising them.

    The resulting bucket's level is the maximum of the input levels (a pure
    union does not add a coreset-construction step, per Observation 1).
    """
    if not buckets:
        raise ValueError("union_buckets requires at least one bucket")
    ordered = _validate_contiguous(buckets)
    data = WeightedPointSet.union_all([b.data for b in ordered])
    return Bucket(
        data=data,
        start=ordered[0].start,
        end=ordered[-1].end,
        level=max(b.level for b in ordered),
    )


def _pooled_union(buckets: list[Bucket], constructor: CoresetConstructor) -> WeightedPointSet | None:
    """Union bucket data into the constructor's scratch pool, when safe.

    The union feeding a merge is consumed by the coreset construction and
    discarded, so its backing arrays can come from the constructor's
    workspace instead of a fresh ``vstack`` per merge.  Only taken when the
    construction is guaranteed to *sample* (union strictly larger than the
    target size ``m``): a passthrough would otherwise retain pool-backed
    arrays inside the tree.  Returns ``None`` when the fallback copying
    union must be used (mixed dtypes, empty inputs, small unions).
    """
    ws = getattr(constructor, "workspace", None)
    if ws is None:
        return None
    sets = [b.data for b in buckets if b.data.size > 0]
    if len(sets) < 2:
        return None
    total = sum(s.size for s in sets)
    if total <= constructor.coreset_size:
        return None
    dtype = sets[0].points.dtype
    if any(s.points.dtype != dtype for s in sets):
        return None
    # Sketches pool all-or-nothing, like the copying union: a mixed batch
    # falls back so the degrade-to-exact rule has one implementation.
    sketched = [s.sketch is not None for s in sets]
    if any(sketched) and not all(sketched):
        return None
    sketch = None
    if all(sketched):
        sketch_dims = {s.sketch.shape[1] for s in sets}  # type: ignore[union-attr]
        if len(sketch_dims) != 1:
            return None
        sketch = ws.buffer(
            "merge.union_sketch", (total, sketch_dims.pop()), np.float32
        )
        np.concatenate([s.sketch for s in sets], axis=0, out=sketch)
    dimension = sets[0].dimension
    points = ws.buffer("merge.union_points", (total, dimension), dtype)
    weights = ws.buffer("merge.union_weights", total)
    np.concatenate([s.points for s in sets], axis=0, out=points)
    np.concatenate([s.weights for s in sets], out=weights)
    return WeightedPointSet(points=points, weights=weights, sketch=sketch)


def merge_buckets(buckets: list[Bucket], constructor: CoresetConstructor) -> Bucket:
    """Merge contiguous buckets into a single coreset bucket one level higher.

    This is the "carry" operation of the coreset tree: union the inputs and
    reduce the union to ``m`` points.  The level of the result is one more
    than the maximum input level (Definition 2).  The construction randomness
    is keyed by the merged span and level, so the result depends only on the
    inputs — batch and per-point ingestion therefore produce identical trees.

    The union of the inputs is staged in the constructor's workspace
    whenever the construction is guaranteed to sample from it (the common
    case), so a steady-state merge performs no union-sized allocations.
    """
    if not buckets:
        raise ValueError("merge_buckets requires at least one bucket")
    ordered = _validate_contiguous(buckets)
    start, end = ordered[0].start, ordered[-1].end
    level = max(b.level for b in ordered) + 1
    data = _pooled_union(ordered, constructor)
    if data is None:
        data = WeightedPointSet.union_all([b.data for b in ordered])
    summary = constructor.build_for_span(data, level=level, start=start, end=end)
    return Bucket(data=summary, start=start, end=end, level=level)


def reduce_bucket(bucket: Bucket, constructor: CoresetConstructor) -> Bucket:
    """Re-summarise a single bucket, increasing its level by one.

    Used by the caching algorithms when they store the coreset computed at
    query time back into the cache (line 17 of Algorithm 3).
    """
    summary = constructor.build(bucket.data)
    return Bucket(
        data=summary,
        start=bucket.start,
        end=bucket.end,
        level=bucket.level + 1,
    )


def total_points(buckets: list[Bucket]) -> int:
    """Total number of stored points across a list of buckets."""
    return int(sum(b.size for b in buckets))


def spans_are_disjoint(buckets: list[Bucket]) -> bool:
    """True when no two buckets cover overlapping base-bucket ranges."""
    ordered = sorted(buckets, key=lambda b: b.start)
    for previous, current in zip(ordered, ordered[1:]):
        if current.start <= previous.end:
            return False
    return True


def covered_range(buckets: list[Bucket]) -> tuple[int, int]:
    """The smallest and largest base-bucket index covered by ``buckets``."""
    if not buckets:
        raise ValueError("covered_range requires at least one bucket")
    return (
        min(b.start for b in buckets),
        max(b.end for b in buckets),
    )


def as_weighted_set(buckets: list[Bucket], dimension: int) -> WeightedPointSet:
    """Union the data of ``buckets`` into one weighted set (empty-safe)."""
    return WeightedPointSet.union_all(
        [b.data for b in buckets], dimension=dimension
    )
