"""Compare a quick-bench report against the committed baseline with a tolerance band.

The perf-regression CI gate.  Both files are produced by
``tools/run_quick_bench.py``.  Every metric is first *normalised* by its
report's calibration time (the wall-clock of a fixed numpy workload measured
on the same machine, in the same run), which cancels most machine-speed
differences between the baseline recorder and the CI runner:

* throughput metrics (``higher_is_better``) compare
  ``value * calibration_seconds`` — work done per calibration unit;
* latency metrics compare ``value / calibration_seconds`` — cost in
  calibration units.

A metric regresses when its normalised value is more than ``--tolerance``
(default 0.30, i.e. 30%; env override ``REPRO_BENCH_TOLERANCE``) worse than
the baseline.  Any regression exits 1 with a per-metric report; improvements
are reported but never fail the gate.

Usage::

    PYTHONPATH=src python tools/run_quick_bench.py --output BENCH_pr4.json
    python tools/check_bench_regression.py \
        --baseline benchmarks/baselines/bench_baseline.json \
        --current BENCH_pr4.json

Refreshing the committed baseline after an intentional perf change::

    python tools/check_bench_regression.py --current BENCH_pr4.json \
        --write-baseline benchmarks/baselines/bench_baseline.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

SCHEMA_VERSION = 1
DEFAULT_TOLERANCE = 0.30
DEFAULT_BASELINE = Path("benchmarks/baselines/bench_baseline.json")


def load_report(path: Path) -> dict:
    """Load and structurally validate one quick-bench JSON report."""
    try:
        report = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot read bench report {path}: {exc}")
    if report.get("schema") != SCHEMA_VERSION:
        raise SystemExit(
            f"error: {path} has schema {report.get('schema')!r}, expected {SCHEMA_VERSION}"
        )
    if not isinstance(report.get("metrics"), dict) or not report["metrics"]:
        raise SystemExit(f"error: {path} contains no metrics")
    if not (float(report.get("calibration_seconds", 0.0)) > 0.0):
        raise SystemExit(f"error: {path} is missing a positive calibration_seconds")
    return report


def normalised(entry: dict, calibration: float) -> float:
    """Machine-normalised metric value (see module docstring)."""
    value = float(entry["value"])
    if entry.get("higher_is_better", False):
        return value * calibration
    return value / calibration


def compare(baseline: dict, current: dict, tolerance: float) -> tuple[list[str], bool]:
    """Per-metric comparison lines plus an overall did-anything-regress flag."""
    lines: list[str] = []
    failed = False
    base_cal = float(baseline["calibration_seconds"])
    curr_cal = float(current["calibration_seconds"])
    lines.append(
        f"calibration: baseline {base_cal * 1e3:.1f} ms, current {curr_cal * 1e3:.1f} ms"
    )
    for name, base_entry in sorted(baseline["metrics"].items()):
        curr_entry = current["metrics"].get(name)
        if curr_entry is None:
            failed = True
            lines.append(f"FAIL {name}: missing from the current report")
            continue
        base_norm = normalised(base_entry, base_cal)
        curr_norm = normalised(curr_entry, curr_cal)
        higher = base_entry.get("higher_is_better", False)
        # Positive ratio = how much worse the current run is, normalised.
        if higher:
            worse_by = (base_norm - curr_norm) / base_norm
        else:
            worse_by = (curr_norm - base_norm) / base_norm
        status = "ok  "
        if worse_by > tolerance:
            status = "FAIL"
            failed = True
        lines.append(
            f"{status} {name}: baseline {float(base_entry['value']):.1f}, "
            f"current {float(curr_entry['value']):.1f} "
            f"({'-' if worse_by > 0 else '+'}{abs(worse_by) * 100.0:.1f}% "
            f"normalised, tolerance {tolerance * 100.0:.0f}%)"
        )
    return lines, failed


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; exits 1 when any metric regresses past the tolerance."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--current", type=Path, required=True)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_TOLERANCE", DEFAULT_TOLERANCE)),
        help="allowed normalised slowdown before failing (fraction, default 0.30)",
    )
    parser.add_argument(
        "--write-baseline",
        type=Path,
        default=None,
        help="copy the current report to this path as the new baseline and exit",
    )
    args = parser.parse_args(argv)

    current = load_report(args.current)
    if args.write_baseline is not None:
        args.write_baseline.parent.mkdir(parents=True, exist_ok=True)
        args.write_baseline.write_text(
            json.dumps(current, indent=2, sort_keys=True) + "\n"
        )
        print(f"baseline updated: {args.write_baseline}")
        return 0

    baseline = load_report(args.baseline)
    lines, failed = compare(baseline, current, args.tolerance)
    print("\n".join(lines))
    if failed:
        print("\nbenchmark regression detected (see FAIL lines above)")
        return 1
    print("\nno benchmark regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
