"""Replay Poisson/bursty query traffic against a live ingest stream.

Self-contained load harness for the concurrent serving plane: builds a
clusterer, keeps it ingesting in a background writer thread, and fires
simulated clients at it — in-process readers (``--mode plane``) or real TCP
connections against the asyncio server (``--mode tcp``, the default).
Reports p50/p99/p999 latency and snapshot staleness.

Usage::

    PYTHONPATH=src python tools/loadgen.py --clients 50 --seconds 5
    PYTHONPATH=src python tools/loadgen.py --mode plane --readers 4 \
        --rate 500 --burst --seconds 10
    PYTHONPATH=src python tools/loadgen.py --shards 4 --backend thread \
        --clients 200 --rate 1000 --json report.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.base import StreamingConfig  # noqa: E402
from repro.core.driver import CachedCoresetTreeClusterer  # noqa: E402
from repro.data.loaders import load_dataset  # noqa: E402
from repro.serving.loadgen import (  # noqa: E402
    IngestLoop,
    LoadgenConfig,
    run_plane_loadgen,
    run_tcp_loadgen,
)
from repro.serving.plane import ServingPlane  # noqa: E402
from repro.serving.server import ServerThread  # noqa: E402


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--mode", choices=("tcp", "plane"), default="tcp")
    parser.add_argument("--clients", type=int, default=100,
                        help="simulated TCP clients (tcp mode)")
    parser.add_argument("--readers", type=int, default=4,
                        help="reader threads (plane mode) / server workers (tcp mode)")
    parser.add_argument("--seconds", type=float, default=5.0)
    parser.add_argument("--rate", type=float, default=200.0,
                        help="target total queries/second (0 = closed loop)")
    parser.add_argument("--burst", action="store_true",
                        help="bursty arrivals: alternate 4x rate and rate/4")
    parser.add_argument("--ks", type=int, nargs="+", default=[10, 20, 30],
                        help="k values clients draw from")
    parser.add_argument("--dataset", default="covtype")
    parser.add_argument("--num-points", type=int, default=20_000)
    parser.add_argument("--k", type=int, default=20, help="config k (coreset sizing)")
    parser.add_argument("--shards", type=int, default=1)
    parser.add_argument("--backend", choices=("serial", "thread", "process"),
                        default="thread")
    parser.add_argument("--batch-size", type=int, default=500,
                        help="writer-plane ingest batch size")
    parser.add_argument("--max-pending", type=int, default=64,
                        help="server admission-queue depth (tcp mode)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--retries", type=int, default=0,
                        help="retry shed (429) queries up to N times with "
                             "full-jitter backoff (tcp mode)")
    parser.add_argument("--retry-backoff", type=float, default=0.02,
                        help="base seconds of the full-jitter retry backoff")
    parser.add_argument("--json", type=Path, default=None,
                        help="also write the report as JSON to this path")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    info = load_dataset(args.dataset, num_points=args.num_points, seed=args.seed)
    config = StreamingConfig(k=args.k, seed=args.seed)
    if args.shards > 1:
        clusterer = CachedCoresetTreeClusterer.sharded(
            config, num_shards=args.shards, backend=args.backend
        )
    else:
        clusterer = CachedCoresetTreeClusterer(config)

    cfg = LoadgenConfig(
        seconds=args.seconds,
        rate=args.rate if args.rate > 0 else None,
        ks=tuple(args.ks),
        burst=args.burst,
        seed=args.seed,
        max_retries=args.retries,
        retry_backoff_s=args.retry_backoff,
    )

    with ServingPlane(clusterer) as plane:
        # Warm the plane so the first client never races the first publish.
        plane.ingest(info.points[: args.batch_size].copy())
        ingest = IngestLoop(plane, info.points, batch_size=args.batch_size)
        ingest.start()
        try:
            if args.mode == "plane":
                report = run_plane_loadgen(plane, cfg, readers=args.readers)
            else:
                with ServerThread(
                    plane,
                    num_workers=args.readers,
                    max_pending=args.max_pending,
                ) as server:
                    report = run_tcp_loadgen(
                        "127.0.0.1", server.port, cfg, clients=args.clients
                    )
        finally:
            ingest.stop()

    mode_label = (
        f"{args.clients} clients" if args.mode == "tcp" else f"{args.readers} readers"
    )
    print(
        f"mode={args.mode} ({mode_label}), ingest batches={ingest.batches_ingested}, "
        f"published version={plane.version}"
    )
    print(report.summary())
    if args.json is not None:
        args.json.write_text(json.dumps(report.as_dict(), indent=2) + "\n")
        print(f"report written to {args.json}")
    return 0 if report.served > 0 else 1


if __name__ == "__main__":
    sys.exit(main())
