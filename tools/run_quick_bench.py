"""Run the quick-scale benchmarks and write a machine-readable JSON report.

The report feeds the ``bench-regression`` CI gate: a handful of headline
metrics — batch-ingestion throughput in points/second and median warm query
latency in microseconds for the CC and RCC clusterers, an update-path
*coreset-merge* microbenchmark (merges/second on a fixed ``(r*m, d)`` input,
isolating the kernel layer from driver overhead), float32 variants of the
ingest and merge paths, a high-dimensional (d=128, k=50) workload with
and without JL sketching, a serving-plane workload (reader p99 latency
under live ingest and with ingest paused, plus mean snapshot staleness),
the elastic plane's live-reshard pause (quiesce-to-resume wall time of
a 4→8 reshard on the thread backend), the scenario algorithms
(sliding-window ingest throughput with live bucket expiry, and the soft
clusterer's fuzzy-refined query latency), and the durable-ingest path
(per-batch write-ahead-journal append cost, journal replay rate, and a
non-normalised plain-vs-supervised ingest overhead section that CI gates
at 10%) — plus a *calibration* measurement: the wall-clock of
a fixed numpy workload shaped like the library's hot loops (GEMM +
reduction + sampling).  The regression checker
(``tools/check_bench_regression.py``) normalises every metric by the
calibration time, so comparisons against a baseline recorded on a different
machine measure the *code*, not the hardware.

Usage::

    PYTHONPATH=src python tools/run_quick_bench.py --output BENCH_pr10.json
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.base import StreamingConfig  # noqa: E402
from repro.core.driver import (  # noqa: E402
    CachedCoresetTreeClusterer,
    RecursiveCachedClusterer,
)
from repro.coreset.bucket import WeightedPointSet  # noqa: E402
from repro.coreset.construction import CoresetConfig, CoresetConstructor  # noqa: E402
from repro.data.loaders import load_dataset  # noqa: E402
from repro.data.synthetic import GaussianMixtureSpec, generate_mixture  # noqa: E402
from repro.extensions.decay import SlidingWindowClusterer  # noqa: E402
from repro.extensions.soft import SoftClusteringClusterer  # noqa: E402
from repro.kernels.sketch import sketch_for  # noqa: E402

SCHEMA_VERSION = 1

#: Quick-scale workload: small enough for a CI smoke job, large enough that
#: the vectorized paths (not fixed overheads) dominate.
NUM_POINTS = 16_000
NUM_QUERIES = 30
K = 20
#: Merges timed per repeat of the update-path microbenchmark.
MERGE_COUNT = 60
#: High-dimensional sketch workload: dimensionality, cluster count, and the
#: target dimensionality it is sketched down to.  The higher k matters as much
#: as the higher d: every extra seeding round adds one more (n, d) pass that
#: sketching shrinks to (n, s), so the d-independent per-merge overheads
#: (sampling, cumsums, dispatch) are amortised and the GEMM ratio shows
#: through.  At k=20 the same d=128 stream is overhead-bound and the sketch
#: win is under 2x — which is exactly the regime the gate is not about.
#: s = d/4 keeps the clustering cost within a fraction of a percent of the
#: exact path on this mixture (s = 8 is measurably too coarse to separate
#: 20 clusters); see ``tests/kernels/test_sketch.py`` for the property-tested
#: envelope.
HIGH_DIM = 128
HIGH_K = 50
SKETCH_DIM = 32
#: Serving workload: queries per latency pass and writer batch size.
SERVING_QUERIES = 100
SERVING_BATCH = 400
#: Elastic workload: shard counts and stream size for the reshard-pause gate.
RESHARD_FROM = 4
RESHARD_TO = 8
RESHARD_POINTS = 8_000


def calibrate(repeats: int = 3) -> float:
    """Seconds for a fixed numpy workload shaped like the library's hot loops."""
    rng = np.random.default_rng(0)
    pts = rng.normal(size=(4096, 54))
    centers = rng.normal(size=(64, 54))
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(20):
            d = pts @ centers.T
            d -= 0.5 * np.einsum("ij,ij->i", centers, centers)[None, :]
            labels = np.argmax(d, axis=1)
            np.bincount(labels, minlength=centers.shape[0])
        best = min(best, time.perf_counter() - start)
    return best


def _measure(clusterer_factory, points: np.ndarray, repeats: int) -> tuple[float, float]:
    """Best-of-``repeats`` (ingest points/s, median warm query latency in µs)."""
    best_pts_per_s = 0.0
    best_median_us = float("inf")
    for _ in range(repeats):
        clusterer = clusterer_factory()
        start = time.perf_counter()
        clusterer.insert_batch(points)
        ingest_seconds = time.perf_counter() - start
        best_pts_per_s = max(best_pts_per_s, points.shape[0] / ingest_seconds)

        latencies = []
        for _ in range(NUM_QUERIES):
            start = time.perf_counter()
            clusterer.query()
            latencies.append(time.perf_counter() - start)
        best_median_us = min(best_median_us, statistics.median(latencies) * 1e6)
    return best_pts_per_s, best_median_us


def _measure_ingest_pair(
    factories: list, points: np.ndarray, repeats: int
) -> list[float]:
    """Interleaved best-of ingest throughput for paired variants.

    The d=128 gate is a *ratio* between the exact and sketched variants, so
    the two must be timed back-to-back within each repeat: measuring one
    variant's repeats en bloc and the other's a minute later lets thermal /
    contention drift land entirely on one side of the ratio.
    """
    best = [0.0] * len(factories)
    for _ in range(repeats):
        for i, factory in enumerate(factories):
            clusterer = factory()
            start = time.perf_counter()
            clusterer.insert_batch(points)
            elapsed = time.perf_counter() - start
            best[i] = max(best[i], points.shape[0] / elapsed)
    return best


def _measure_merges(
    points: np.ndarray,
    dtype: str,
    repeats: int,
    sketch_dim: int | None = None,
    k: int = K,
) -> float:
    """Best-of-``repeats`` coreset merges/second on a fixed ``(2m, d)`` input.

    Times ``CoresetConstructor.build_for_span`` directly — the hot kernel of
    every tree carry — on a steady-state-shaped input (one ``r * m`` union of
    two base buckets), with distinct span keys so each merge draws its own
    randomness exactly like the live tree.  With ``sketch_dim`` the input
    carries its sketched view, built outside the clock: in a live run every
    point is projected exactly once, at ingest, so the projection is part of
    the ingest metric, not the per-merge cost.
    """
    m = StreamingConfig(k=k, seed=0).bucket_size
    block = np.ascontiguousarray(points[: 2 * m], dtype=np.dtype(dtype))
    best = 0.0
    for _ in range(repeats):
        constructor = CoresetConstructor(
            CoresetConfig(k=k, coreset_size=m, sketch_dim=sketch_dim), seed=0
        )
        data = WeightedPointSet.from_points(
            block, sketch=sketch_for(constructor.sketcher, block)
        )
        for i in range(3):  # warm the workspace pools
            constructor.build_for_span(data, level=1, start=2 * i + 1, end=2 * i + 2)
        start = time.perf_counter()
        for i in range(MERGE_COUNT):
            constructor.build_for_span(
                data, level=1, start=2 * i + 101, end=2 * i + 102
            )
        elapsed = time.perf_counter() - start
        best = max(best, MERGE_COUNT / elapsed)
    return best


def _serving_pass(reader, rng: np.random.Generator) -> tuple[float, float]:
    """(p99 latency µs, mean snapshot staleness ms) over one query pass."""
    latencies = np.empty(SERVING_QUERIES)
    staleness_ms = np.empty(SERVING_QUERIES)
    for index in range(SERVING_QUERIES):
        k = int(rng.choice((10, 20, 30)))
        start = time.perf_counter()
        result = reader.query(k)
        latencies[index] = time.perf_counter() - start
        staleness_ms[index] = result.staleness_seconds * 1e3
    return float(np.percentile(latencies, 99) * 1e6), float(staleness_ms.mean())


def _measure_serving(points: np.ndarray, repeats: int) -> dict[str, float]:
    """Best-of-``repeats`` serving-plane SLO numbers.

    One reader runs closed-loop against a plane whose writer keeps
    publishing (IngestLoop); the same reader is then measured with ingest
    paused.  The live/paused pair is the SLO the serving tests gate on
    (live p99 within 2x of paused); mean staleness is the freshness cost of
    the snapshot cadence at this batch size.
    """
    from repro.serving.loadgen import IngestLoop
    from repro.serving.plane import ServingPlane

    best_live = best_paused = best_staleness = float("inf")
    for _ in range(repeats):
        plane = ServingPlane(CachedCoresetTreeClusterer(StreamingConfig(k=K, seed=0)))
        try:
            plane.ingest(points[:SERVING_BATCH])
            loop = IngestLoop(plane, points, batch_size=SERVING_BATCH)
            loop.start()
            try:
                reader = plane.reader(seed=0)
                rng = np.random.default_rng(0)
                _serving_pass(reader, rng)  # warm the engine and caches

                loop.pause()
                time.sleep(0.05)  # let any in-flight batch settle
                paused_p99, _ = _serving_pass(reader, rng)

                loop.resume()
                time.sleep(0.05)
                live_p99, staleness_ms = _serving_pass(reader, rng)
            finally:
                loop.stop()
        finally:
            plane.close()
        best_live = min(best_live, live_p99)
        best_paused = min(best_paused, paused_p99)
        best_staleness = min(best_staleness, staleness_ms)
    return {
        "serving_p99_us": best_live,
        "serving_p99_us_ingest_paused": best_paused,
        "snapshot_staleness_ms": best_staleness,
    }


def _measure_reshard_pause(points: np.ndarray, repeats: int) -> float:
    """Best-of-``repeats`` live-reshard pause in ms (4→8 shards, thread backend).

    The pause is the engine-reported quiesce-to-resume window during which
    ingest is blocked: the sync barrier, the cross-shard coreset collect, the
    backend teardown/rebuild, and the adoption of the redistributed pieces.
    This is the elastic plane's headline latency — a regression here means
    live reshards stall the writer.
    """
    from repro.parallel import ShardedEngine

    best = float("inf")
    for _ in range(repeats):
        with ShardedEngine(
            StreamingConfig(k=K, seed=0),
            num_shards=RESHARD_FROM,
            backend="thread",
        ) as engine:
            engine.insert_batch(points[:RESHARD_POINTS])
            engine.flush()
            report = engine.reshard(RESHARD_TO)
        best = min(best, report.pause_seconds * 1e3)
    return best


def _measure_durable(points: np.ndarray, repeats: int) -> tuple[dict[str, float], dict]:
    """Best-of-``repeats`` durability numbers for the ingest journal.

    ``wal_append_us`` is the median cost of journalling one
    ``SERVING_BATCH``-point batch (encode + CRC + buffered write;
    ``fsync_every=0`` so the metric tracks the code path, not the disk);
    ``recovery_replay_pts_s`` is the decode-side rate of ``replay_wal``
    over the journal just written — the dominant term of crash-recovery
    time once the snapshot is restored.  The plain-vs-supervised ingest
    pair is interleaved per repeat (same reasoning as the sketch pair) and
    returned as a separate *non-normalised* section: the overhead is a
    ratio of two rates from the same machine and run, so calibration
    would cancel out anyway, and CI gates it directly at 10%.
    """
    import shutil
    import tempfile

    from repro.checkpoint.store import CheckpointStore
    from repro.resilience import IngestSupervisor, WriteAheadLog, replay_wal
    from repro.serving.plane import ServingPlane

    batches = [
        points[start : start + SERVING_BATCH]
        for start in range(0, len(points), SERVING_BATCH)
    ]
    config = StreamingConfig(k=K, seed=0)
    best_append_us = float("inf")
    best_replay = 0.0
    best_plain = best_durable = 0.0
    best_overhead = float("inf")
    for _ in range(repeats):
        root = Path(tempfile.mkdtemp(prefix="repro-bench-wal-"))
        try:
            # Journal append cost, isolated from clustering.
            appends = []
            position = 0
            with WriteAheadLog(root / "wal", fsync_every=0) as wal:
                for batch in batches:
                    start = time.perf_counter()
                    wal.append(batch, position)
                    appends.append(time.perf_counter() - start)
                    position += batch.shape[0]
            best_append_us = min(best_append_us, statistics.median(appends) * 1e6)

            # Replay rate: decode + CRC-verify the journal just written.
            start = time.perf_counter()
            replayed = sum(r.batch.shape[0] for r in replay_wal(root / "wal"))
            best_replay = max(best_replay, replayed / (time.perf_counter() - start))

            # Interleaved plain vs supervised (journalled) ingest pair.
            plane = ServingPlane(CachedCoresetTreeClusterer(config))
            try:
                start = time.perf_counter()
                for batch in batches:
                    plane.ingest(batch.copy())
                plain = points.shape[0] / (time.perf_counter() - start)
            finally:
                plane.close()

            plane = ServingPlane(CachedCoresetTreeClusterer(config))
            supervisor = IngestSupervisor(
                plane,
                CheckpointStore(root / "ckpts", keep_last=2),
                root / "wal-durable",
                fsync_every=0,
            )
            try:
                start = time.perf_counter()
                for batch in batches:
                    supervisor.ingest(batch.copy())
                durable = points.shape[0] / (time.perf_counter() - start)
            finally:
                supervisor.close(final_checkpoint=False)
                plane.close()
            best_plain = max(best_plain, plain)
            best_durable = max(best_durable, durable)
            # The overhead is paired within the repeat (same thermal /
            # contention conditions for both sides) and best-of across
            # repeats, like every other metric: noise only ever inflates
            # it, so the minimum is the tightest estimate — and a negative
            # pair means the true overhead is below the noise floor.
            best_overhead = min(best_overhead, 100.0 * (1.0 - durable / plain))
        finally:
            shutil.rmtree(root, ignore_errors=True)
    metrics = {
        "wal_append_us": best_append_us,
        "recovery_replay_pts_s": best_replay,
    }
    section = {
        "plain_ingest_pts_s": best_plain,
        "durable_ingest_pts_s": best_durable,
        "overhead_pct": max(0.0, best_overhead),
    }
    return metrics, section


def run(repeats: int) -> dict:
    """Execute the quick benchmark suite and return the report dict."""
    points = load_dataset("covtype", num_points=NUM_POINTS, seed=0).points
    config = StreamingConfig(k=K, seed=0)

    metrics: dict[str, dict] = {}
    for name, factory in (
        ("cc", lambda: CachedCoresetTreeClusterer(config)),
        ("rcc", lambda: RecursiveCachedClusterer(config)),
    ):
        pts_per_s, median_us = _measure(factory, points, repeats)
        metrics[f"{name}_ingest_pts_per_s"] = {
            "value": pts_per_s,
            "higher_is_better": True,
        }
        metrics[f"{name}_query_median_us"] = {
            "value": median_us,
            "higher_is_better": False,
        }

    # Opt-in float32 ingest path (the stream is cast once, outside the clock,
    # exactly as the harness does for dtype="float32" runs).
    config32 = StreamingConfig(k=K, seed=0, dtype="float32")
    points32 = points.astype(np.float32)
    pts_per_s, _ = _measure(
        lambda: CachedCoresetTreeClusterer(config32), points32, repeats
    )
    metrics["cc_ingest_pts_per_s_float32"] = {
        "value": pts_per_s,
        "higher_is_better": True,
    }

    # Update-path merge microbenchmark, both dtypes.
    metrics["merge_updates_per_s"] = {
        "value": _measure_merges(points, "float64", repeats),
        "higher_is_better": True,
    }
    metrics["merge_updates_per_s_float32"] = {
        "value": _measure_merges(points, "float32", repeats),
        "higher_is_better": True,
    }

    # High-dimensional, higher-k workload, exact vs JL-sketched: per-merge
    # distance math scales with k * n * d, so this is where sketching pays.
    # Same synthetic mixture for both variants; the sketched ingest metric
    # includes the per-batch projection cost (points are projected once, at
    # ingest).
    hd_points, _ = generate_mixture(
        GaussianMixtureSpec(dimension=HIGH_DIM, num_clusters=K),
        NUM_POINTS,
        rng=np.random.default_rng(7),
    )
    hd_config = StreamingConfig(k=HIGH_K, seed=0)
    sketch_config = StreamingConfig(k=HIGH_K, seed=0, sketch_dim=SKETCH_DIM)
    exact_rate, sketch_rate = _measure_ingest_pair(
        [
            lambda: CachedCoresetTreeClusterer(hd_config),
            lambda: CachedCoresetTreeClusterer(sketch_config),
        ],
        hd_points,
        repeats,
    )
    metrics[f"cc_ingest_pts_per_s_d{HIGH_DIM}"] = {
        "value": exact_rate,
        "higher_is_better": True,
    }
    metrics[f"cc_ingest_pts_per_s_d{HIGH_DIM}_sketch"] = {
        "value": sketch_rate,
        "higher_is_better": True,
    }
    # Same interleaving for the merge microbenchmark pair.
    merge_exact = merge_sketch = 0.0
    for _ in range(repeats):
        merge_exact = max(
            merge_exact, _measure_merges(hd_points, "float64", 1, k=HIGH_K)
        )
        merge_sketch = max(
            merge_sketch,
            _measure_merges(
                hd_points, "float64", 1, sketch_dim=SKETCH_DIM, k=HIGH_K
            ),
        )
    metrics[f"merge_updates_per_s_d{HIGH_DIM}"] = {
        "value": merge_exact,
        "higher_is_better": True,
    }
    metrics[f"merge_updates_per_s_d{HIGH_DIM}_sketch"] = {
        "value": merge_sketch,
        "higher_is_better": True,
    }

    # Scenario algorithms: window ingest exercises live bucket expiry on
    # every bucket past the horizon; soft queries pay the engine's hard
    # solve plus the fuzzy c-means refinement over the same coreset.
    window_rate, _ = _measure(
        lambda: SlidingWindowClusterer(config, window_buckets=20), points, repeats
    )
    metrics["window_ingest_pts_s"] = {"value": window_rate, "higher_is_better": True}
    _, soft_us = _measure(lambda: SoftClusteringClusterer(config), points, repeats)
    metrics["soft_query_us"] = {"value": soft_us, "higher_is_better": False}

    # Serving plane: reader-observed p99 with the writer publishing vs
    # paused, plus the snapshot-freshness cost of the publish cadence.
    for name, value in _measure_serving(points, repeats).items():
        metrics[name] = {"value": value, "higher_is_better": False}

    # Elastic plane: quiesce-to-resume pause of a live 4→8 reshard.
    metrics["reshard_pause_ms"] = {
        "value": _measure_reshard_pause(points, repeats),
        "higher_is_better": False,
    }

    # Durable ingest: journal append cost, replay rate, and the plain-vs-
    # supervised overhead pair (kept non-normalised; CI gates the ratio).
    durable_metrics, wal_section = _measure_durable(points, repeats)
    metrics["wal_append_us"] = {
        "value": durable_metrics["wal_append_us"],
        "higher_is_better": False,
    }
    metrics["recovery_replay_pts_s"] = {
        "value": durable_metrics["recovery_replay_pts_s"],
        "higher_is_better": True,
    }

    return {
        "schema": SCHEMA_VERSION,
        "calibration_seconds": calibrate(),
        "workload": {
            "num_points": NUM_POINTS,
            "num_queries": NUM_QUERIES,
            "k": K,
            "high_dim": HIGH_DIM,
            "high_dim_k": HIGH_K,
            "sketch_dim": SKETCH_DIM,
            "serving_queries": SERVING_QUERIES,
            "serving_batch": SERVING_BATCH,
            "reshard_from": RESHARD_FROM,
            "reshard_to": RESHARD_TO,
            "reshard_points": RESHARD_POINTS,
        },
        "metrics": metrics,
        "wal": wal_section,
        "meta": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: run the suite and write the JSON report."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=Path("BENCH_pr10.json"))
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)

    report = run(args.repeats)
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"calibration: {report['calibration_seconds'] * 1e3:.1f} ms")
    for name, entry in sorted(report["metrics"].items()):
        print(f"{name}: {entry['value']:.1f}")
    print(f"wal overhead: {report['wal']['overhead_pct']:.1f}%")
    print(f"report written to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
