#!/usr/bin/env python
"""Docstring-coverage gate for the public API (pydocstyle's D1xx family).

Dependency-free equivalent of the ruff/pydocstyle missing-docstring rules,
enforced in CI (the container policy forbids extra packages, so the check is
implemented on the stdlib ``ast`` module):

* D100 — public module must have a docstring
* D101 — public class must have a docstring
* D102 — public method must have a docstring
* D103 — public function must have a docstring
* D104 — public package (``__init__.py``) must have a docstring

"Public" follows the underscore convention: any name starting with ``_`` is
exempt, as is everything inside it.  Dunder methods other than ``__init__``'s
class are exempt (pydocstyle D105 is not enforced).  Nested (closure)
functions are not part of the API and are exempt.

Usage::

    python tools/check_docstrings.py [root ...]

Defaults to checking ``src/repro``.  Exits non-zero listing every violation
as ``path:line: CODE symbol``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

DEFAULT_ROOTS = ("src/repro",)


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _has_docstring(node: ast.AST) -> bool:
    return ast.get_docstring(node, clean=False) is not None


def _iter_violations(path: Path, tree: ast.Module):
    """Yield ``(lineno, code, symbol)`` for every missing public docstring."""
    if not _has_docstring(tree):
        code = "D104" if path.name == "__init__.py" else "D100"
        yield 1, code, path.stem

    def walk(node: ast.AST, prefix: str, inside_class: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                if not _is_public(child.name):
                    continue
                if not _has_docstring(child):
                    yield_list.append((child.lineno, "D101", f"{prefix}{child.name}"))
                walk(child, f"{prefix}{child.name}.", True)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = child.name
                if name.startswith("__") and name.endswith("__"):
                    continue  # dunders: D105/D107 not enforced
                if not _is_public(name):
                    continue
                if not _has_docstring(child):
                    code = "D102" if inside_class else "D103"
                    yield_list.append((child.lineno, code, f"{prefix}{name}"))
                # Nested defs are closures, not API surface: do not recurse.

    yield_list: list[tuple[int, str, str]] = []
    walk(tree, "", False)
    yield from yield_list


def check(roots: list[str]) -> int:
    """Check every ``.py`` file under ``roots``; return the violation count."""
    violations = 0
    for root in roots:
        base = Path(root)
        if not base.exists():
            print(f"error: root {root!r} does not exist", file=sys.stderr)
            return 1
        for path in sorted(base.rglob("*.py")):
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
            for lineno, code, symbol in _iter_violations(path, tree):
                print(f"{path}:{lineno}: {code} missing docstring: {symbol}")
                violations += 1
    return violations


def main(argv: list[str]) -> int:
    """CLI entry point: check the given roots (default ``src/repro``)."""
    roots = argv[1:] or list(DEFAULT_ROOTS)
    violations = check(roots)
    if violations:
        print(f"\n{violations} missing docstring(s)", file=sys.stderr)
        return 1
    print("docstring coverage: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
