"""Print the calibration-normalised trajectory of every committed bench report.

Each PR commits a ``BENCH_pr<N>.json`` produced by ``tools/run_quick_bench.py``.
This tool reads all of them (repo root by default), normalises every metric by
its own report's calibration time — the same machine-speed cancellation the
regression gate uses (see ``tools/check_bench_regression.py``) — and renders a
per-metric markdown table of the trajectory across PRs, plus each metric's
cumulative change relative to the first report that recorded it.

Metrics appear and disappear over time (new workloads are added, old ones
retired); missing cells render as ``-`` rather than failing, so the table is
always buildable from whatever history is committed.

Usage::

    python tools/bench_trend.py                  # print to stdout
    python tools/bench_trend.py --output bench_trend.md
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

SCHEMA_VERSION = 1

_REPORT_PATTERN = re.compile(r"^BENCH_pr(\d+)\.json$")


def discover_reports(root: Path) -> list[tuple[str, Path]]:
    """``(label, path)`` for every ``BENCH_pr<N>.json`` in ``root``, by PR number."""
    found = []
    for path in root.glob("BENCH_pr*.json"):
        match = _REPORT_PATTERN.match(path.name)
        if match:
            found.append((int(match.group(1)), path))
    return [(f"pr{number}", path) for number, path in sorted(found)]


def load_normalised(path: Path) -> dict[str, float]:
    """Metric name -> calibration-normalised value for one report.

    Throughput metrics are multiplied by the calibration time (work per
    calibration unit), latency metrics divided by it (cost in calibration
    units) — identical to the regression gate's normalisation, so the two
    tools can never disagree about what "faster" means.
    """
    report = json.loads(path.read_text())
    if report.get("schema") != SCHEMA_VERSION:
        raise SystemExit(
            f"error: {path} has schema {report.get('schema')!r}, expected {SCHEMA_VERSION}"
        )
    calibration = float(report["calibration_seconds"])
    if not calibration > 0.0:
        raise SystemExit(f"error: {path} is missing a positive calibration_seconds")
    normalised = {}
    for name, entry in report["metrics"].items():
        value = float(entry["value"])
        if entry.get("higher_is_better", False):
            normalised[name] = value * calibration
        else:
            normalised[name] = value / calibration
    return normalised


def render_table(reports: list[tuple[str, dict[str, float]]]) -> str:
    """Markdown trajectory table: one row per metric, one column per report.

    The final column is the cumulative change versus the first report that
    recorded the metric, signed so positive is always an improvement for
    throughput metrics and a slowdown is explicit for latency ones (the
    normalised value's meaning — bigger-is-more-work vs bigger-is-slower —
    is carried by the metric name's ``_us`` suffix convention upstream; here
    the delta is reported on the normalised scale, so the reader compares
    like with like).
    """
    names = sorted({name for _, metrics in reports for name in metrics})
    header = ["metric", *(label for label, _ in reports), "vs first"]
    lines = [
        "| " + " | ".join(header) + " |",
        "|" + "|".join(["---"] * len(header)) + "|",
    ]
    for name in names:
        cells = [name]
        series = [(label, metrics.get(name)) for label, metrics in reports]
        for _, value in series:
            cells.append("-" if value is None else f"{value:.4g}")
        recorded = [value for _, value in series if value is not None]
        if len(recorded) >= 2 and recorded[0] != 0.0:
            change = (recorded[-1] - recorded[0]) / recorded[0] * 100.0
            cells.append(f"{change:+.1f}%")
        else:
            cells.append("-")
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: discover reports, render the trajectory, write/print it."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="directory scanned for BENCH_pr<N>.json reports (default: repo root)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="also write the markdown table to this path",
    )
    args = parser.parse_args(argv)

    discovered = discover_reports(args.root)
    if not discovered:
        print(f"error: no BENCH_pr<N>.json reports found under {args.root}", file=sys.stderr)
        return 1
    reports = [(label, load_normalised(path)) for label, path in discovered]

    table = render_table(reports)
    body = (
        "# Benchmark trajectory (calibration-normalised)\n\n"
        + f"Reports: {', '.join(label for label, _ in reports)}. "
        + "Values are normalised by each report's own calibration time; "
        + "throughput rows read higher-is-better, ``_us`` latency rows "
        + "lower-is-better.\n\n"
        + table
        + "\n"
    )
    print(body)
    if args.output is not None:
        args.output.write_text(body)
        print(f"trend written to {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
