"""Figure 10: total time per point vs. Poisson query arrival rate.

Paper shape being reproduced: query time dominates update time at high query
rates, so the total per-point time follows the same trend as Figure 9 —
decreasing with rarer queries, with OnlineCC cheapest at every rate.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import poisson_queries
from repro.bench.report import format_nested_series

from _bench_utils import emit

MEAN_INTERVALS = (50, 200, 800, 3200)
ALGORITHMS = ("streamkm++", "cc", "rcc", "onlinecc")
K = 20


def _run(points):
    return poisson_queries(
        points, mean_intervals=MEAN_INTERVALS, algorithms=ALGORITHMS, k=K, seed=0
    )


@pytest.mark.parametrize("dataset", ["power"])
def test_fig10_total_time_vs_poisson_rate(benchmark, dataset, request):
    points = request.getfixturevalue(f"{dataset}_points")
    results = benchmark.pedantic(_run, args=(points,), rounds=1, iterations=1)

    emit(
        format_nested_series(
            results,
            x_label="mean query interval (1/lambda)",
            metric="total_us",
            title=f"Figure 10 ({dataset}): total time per point (us) vs. Poisson interval",
            precision=2,
        )
    )

    densest, sparsest = MEAN_INTERVALS[0], MEAN_INTERVALS[-1]

    # Shape 1: total time per point decreases as queries become rarer for the
    # tree-based algorithms (their query cost dominates).
    for name in ("streamkm++", "cc", "rcc"):
        assert results[name][sparsest]["total_us"] < results[name][densest]["total_us"]

    # Shape 2: OnlineCC is the cheapest in total time at the densest rate.
    densest_totals = {name: results[name][densest]["total_us"] for name in ALGORITHMS}
    assert densest_totals["onlinecc"] == min(densest_totals.values())
