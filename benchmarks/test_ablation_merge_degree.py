"""Ablation: effect of the coreset-tree merge degree r on CC.

DESIGN.md calls out the merge degree as a design choice worth ablating.  A
larger r makes the tree shallower (fewer levels, so lower coreset levels and
better theoretical accuracy) but means more buckets may be merged per query.
This benchmark sweeps r for the CC algorithm and records total time, final
cost, and memory, asserting that accuracy stays comparable across r (the
paper's observation that theory is conservative here).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import StreamingExperiment, run_experiment
from repro.bench.report import format_table
from repro.core.base import StreamingConfig
from repro.queries.schedule import FixedIntervalSchedule

from _bench_utils import emit

MERGE_DEGREES = (2, 3, 8)
K = 20


def _run(points):
    rows = []
    for r in MERGE_DEGREES:
        config = StreamingConfig(k=K, merge_degree=r, seed=0)
        experiment = StreamingExperiment(
            algorithm="cc", config=config, schedule=FixedIntervalSchedule(200)
        )
        result = run_experiment(experiment, points)
        rows.append(
            {
                "merge degree r": r,
                "total_s": result.timing.total_seconds,
                "query_s": result.timing.query_seconds,
                "final_cost": result.final_cost,
                "points_stored": result.memory.points_stored,
            }
        )
    return rows


@pytest.mark.parametrize("dataset", ["covtype"])
def test_ablation_merge_degree(benchmark, dataset, request):
    points = request.getfixturevalue(f"{dataset}_points")
    rows = benchmark.pedantic(_run, args=(points,), rounds=1, iterations=1)

    emit(format_table(rows, title="Ablation: CC vs. coreset-tree merge degree r", precision=3))

    costs = [row["final_cost"] for row in rows]
    # Accuracy is essentially independent of r in practice.
    assert max(costs) <= 1.7 * min(costs)
    # Every configuration keeps a bounded memory footprint.
    assert all(row["points_stored"] > 0 for row in rows)
