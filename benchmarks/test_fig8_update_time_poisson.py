"""Figure 8: update time per point vs. Poisson query arrival rate.

Paper shape being reproduced: the update path is independent of the query
schedule, so the per-point update time stays roughly flat as the mean query
interval changes, for every algorithm.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import poisson_queries
from repro.bench.report import format_nested_series

from _bench_utils import emit

MEAN_INTERVALS = (50, 200, 800, 3200)
ALGORITHMS = ("streamkm++", "cc", "rcc", "onlinecc")
K = 20


def _run(points):
    return poisson_queries(
        points, mean_intervals=MEAN_INTERVALS, algorithms=ALGORITHMS, k=K, seed=0
    )


@pytest.mark.parametrize("dataset", ["covtype"])
def test_fig8_update_time_vs_poisson_rate(benchmark, dataset, request):
    points = request.getfixturevalue(f"{dataset}_points")
    results = benchmark.pedantic(_run, args=(points,), rounds=1, iterations=1)

    emit(
        format_nested_series(
            results,
            x_label="mean query interval (1/lambda)",
            metric="update_us",
            title=f"Figure 8 ({dataset}): update time per point (us) vs. Poisson interval",
            precision=2,
        )
    )

    # Shape: update time is insensitive to the query arrival rate (within a
    # small factor; timing noise on short runs prevents exact equality).
    for name in ALGORITHMS:
        series = [results[name][interval]["update_us"] for interval in MEAN_INTERVALS]
        assert max(series) <= 5.0 * min(series)
