"""Sharded ingestion throughput: parallel workers vs. the 1-shard baseline.

The point of the parallel engine: shard-local updates are embarrassingly
parallel (Observation 1), so with ``W`` workers on ``>= W`` cores ingestion
throughput should scale well beyond one structure.  This benchmark drives the
covtype-like stream through :func:`repro.bench.experiments.scaling_profile`
(pure ingestion, barrier-terminated so queued work cannot hide) and asserts
a >= 2x speedup for 4 workers over the single-structure baseline on the best
parallel backend.

The assertion needs real parallel hardware; on machines with fewer than 4
usable cores the numbers are still measured and recorded, but the speedup
assertion is skipped (a 1-core container physically cannot show 2x).
"""

from __future__ import annotations

import os

import pytest

from repro.bench.experiments import scaling_profile

from _bench_utils import emit


def _usable_cores() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


WORKERS = 4
PARALLEL_BACKENDS = ("thread", "process")


class TestShardedThroughput:
    def test_four_workers_at_least_2x_over_one_shard(self, covtype_points):
        profile = scaling_profile(
            covtype_points,
            shard_counts=(1, WORKERS),
            backends=("serial", *PARALLEL_BACKENDS),
            algorithm="cc",
            k=20,
            coreset_size=400,
            routing="round_robin",
            seed=0,
            chunk_size=4096,
            repeats=3,
        )

        lines = [
            "Sharded throughput: 4-worker parallel ingestion vs 1-shard baseline "
            "(covtype-like)",
            f"stream: {covtype_points.shape[0]} x {covtype_points.shape[1]}, "
            f"m=400, k=20, usable cores: {_usable_cores()}",
            "",
            f"{'backend':<10}{'shards':>8}{'seconds':>12}{'pts/s':>14}{'speedup':>10}",
        ]
        for backend, cells in profile.items():
            for shards, cell in sorted(cells.items()):
                lines.append(
                    f"{backend:<10}{shards:>8}{cell['seconds']:>12.4f}"
                    f"{cell['points_per_second']:>14.0f}"
                    f"{cell['speedup_vs_baseline']:>10.2f}"
                )
        best_backend = max(
            PARALLEL_BACKENDS,
            key=lambda name: profile[name][WORKERS]["speedup_vs_baseline"],
        )
        best = profile[best_backend][WORKERS]["speedup_vs_baseline"]
        lines.append("")
        lines.append(
            f"best {WORKERS}-worker backend: {best_backend} ({best:.2f}x over baseline)"
        )
        emit("\n".join(lines))

        # Sanity that holds on any hardware: the engine actually ingested the
        # stream on every backend (a stalled queue would blow the wall-clock).
        for backend in ("serial", *PARALLEL_BACKENDS):
            assert profile[backend][WORKERS]["seconds"] > 0.0

        if _usable_cores() < WORKERS:
            pytest.skip(
                f"only {_usable_cores()} usable core(s): the >=2x/{WORKERS}-worker "
                "assertion needs real parallel hardware (results recorded above)"
            )
        assert best >= 2.0, (
            f"expected >=2x ingestion speedup with {WORKERS} workers, "
            f"best backend {best_backend} reached {best:.2f}x"
        )
