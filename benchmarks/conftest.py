"""Shared fixtures and configuration for the benchmark suite.

Every benchmark reproduces one table or figure from the paper's Section 5 and
prints the regenerated rows/series so that ``pytest benchmarks/
--benchmark-only`` leaves a readable record (captured with ``-s`` or in the
captured-output section of failures).

The paper's experiments stream hundreds of thousands of points through a Java
implementation; this reproduction uses reduced stream sizes by default so the
whole suite finishes in minutes on a laptop.  Set the environment variable
``REPRO_BENCH_SCALE=large`` for larger streams (closer to the paper's scale,
much slower).  Absolute numbers are not expected to match the paper; the
qualitative shape of every series is, and each benchmark asserts that shape.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.data.loaders import load_dataset

# Reduced stream sizes (points per dataset) for the default benchmark run.
_SMALL_SIZES = {
    "covtype": 6_000,
    "power": 8_000,
    "intrusion": 6_000,
    "drift": 6_000,
}
_LARGE_SIZES = {
    "covtype": 60_000,
    "power": 80_000,
    "intrusion": 60_000,
    "drift": 40_000,
}


def bench_scale() -> str:
    """The benchmark scale selected via ``REPRO_BENCH_SCALE`` (small or large)."""
    return os.environ.get("REPRO_BENCH_SCALE", "small").lower()


def dataset_points(name: str) -> np.ndarray:
    """Load a dataset at the benchmark scale."""
    sizes = _LARGE_SIZES if bench_scale() == "large" else _SMALL_SIZES
    return load_dataset(name, num_points=sizes[name]).points


@pytest.fixture(scope="session")
def covtype_points() -> np.ndarray:
    """Covtype-like stream at benchmark scale."""
    return dataset_points("covtype")


@pytest.fixture(scope="session")
def power_points() -> np.ndarray:
    """Power-like stream at benchmark scale."""
    return dataset_points("power")


@pytest.fixture(scope="session")
def intrusion_points() -> np.ndarray:
    """Intrusion-like stream at benchmark scale."""
    return dataset_points("intrusion")


@pytest.fixture(scope="session")
def drift_points() -> np.ndarray:
    """Drift stream at benchmark scale."""
    return dataset_points("drift")


@pytest.fixture(scope="session")
def all_datasets(covtype_points, power_points, intrusion_points, drift_points):
    """All four evaluation datasets keyed by name."""
    return {
        "Covtype": covtype_points,
        "Power": power_points,
        "Intrusion": intrusion_points,
        "Drift": drift_points,
    }


def emit(text: str) -> None:
    """Print a reproduced table with surrounding blank lines (shows up with -s)."""
    print("\n" + text + "\n")
