"""Table 2: RCC trade-offs as a function of the nesting depth iota.

The paper's Table 2 lists asymptotic trade-offs (coreset level, query cost,
update cost, memory) for two settings of iota.  This benchmark measures the
empirical counterparts over a sweep of nesting depths: the maximum level of
any coreset returned at query time (accuracy proxy) and the stored-point
footprint (memory), asserting the qualitative trade-off — deeper nesting
costs more memory while keeping the returned coreset level low.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import rcc_tradeoffs
from repro.bench.report import format_table

from _bench_utils import emit

DEPTHS = (0, 1, 2, 3)


def _run(points):
    return rcc_tradeoffs(points, nesting_depths=DEPTHS, k=20, bucket_size=200, seed=0)


@pytest.mark.parametrize("dataset", ["covtype"])
def test_table2_rcc_tradeoffs(benchmark, dataset, request):
    points = request.getfixturevalue(f"{dataset}_points")
    rows = benchmark.pedantic(_run, args=(points,), rounds=1, iterations=1)

    emit(format_table(rows, title="Table 2 (empirical): RCC trade-offs vs. nesting depth"))

    by_depth = {int(row["nesting_depth"]): row for row in rows}

    # Outer merge degree follows 2^(2^iota).
    assert by_depth[0]["outer_merge_degree"] == 2.0
    assert by_depth[3]["outer_merge_degree"] == 256.0

    # Memory grows with the nesting depth (more inner structures and caches).
    assert by_depth[3]["stored_points"] >= by_depth[0]["stored_points"]

    # The coreset level returned at query time stays small for every depth
    # (far below the number of buckets, which is what naive merging would give).
    for depth in DEPTHS:
        assert by_depth[depth]["max_query_level"] <= by_depth[depth]["num_buckets"] / 2
        assert by_depth[depth]["max_query_level"] <= 12
