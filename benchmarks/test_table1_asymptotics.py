"""Table 1 (empirical check): growth of query-time work for CT vs. CC.

Table 1 is an asymptotic statement, not a measured table, so this benchmark
verifies the quantity behind it empirically: the number of (weighted) points
that must be merged to answer a query.  For CT that is the union of all
active buckets — Theta(m * r * log N / log r); for CC it is at most the
cached prefix plus (r - 1) tree buckets — Theta(m * r), independent of N.
The benchmark streams an increasing number of base buckets through both
structures and asserts that CT's query input keeps growing while CC's stays
bounded.
"""

from __future__ import annotations

import numpy as np

from repro.core.cached_tree import CachedCoresetTree
from repro.core.coreset_tree import CoresetTree
from repro.coreset.bucket import Bucket, WeightedPointSet
from repro.coreset.construction import make_constructor
from repro.bench.report import format_table

from _bench_utils import emit

MERGE_DEGREE = 2
BUCKET_SIZE = 60
CHECKPOINTS = (15, 63, 255)


def _base_bucket(index: int, rng: np.random.Generator) -> Bucket:
    return Bucket(
        data=WeightedPointSet.from_points(rng.normal(size=(BUCKET_SIZE, 4))),
        start=index,
        end=index,
        level=0,
    )


def _measure_query_inputs():
    rng = np.random.default_rng(0)
    ct = CoresetTree(make_constructor(k=5, coreset_size=BUCKET_SIZE, seed=0), MERGE_DEGREE)
    cc = CachedCoresetTree(make_constructor(k=5, coreset_size=BUCKET_SIZE, seed=0), MERGE_DEGREE)

    rows = []
    for index in range(1, max(CHECKPOINTS) + 1):
        ct.insert_bucket(_base_bucket(index, rng))
        cc.insert_bucket(_base_bucket(index, rng))
        # CC queries after every bucket, as in the paper's query model; this
        # is what keeps its cache warm.
        cc_query_points = _cc_query_input_size(cc)
        if index in CHECKPOINTS:
            rows.append(
                {
                    "N (base buckets)": index,
                    "CT points merged at query": ct.query_coreset().size,
                    "CC points merged at query": cc_query_points,
                }
            )
    return rows


def _cc_query_input_size(cc: CachedCoresetTree) -> int:
    """Points fed into the merge for one CC query (prefix + suffix buckets)."""
    from repro.core.numeral import major

    n = cc.num_base_buckets
    n1 = major(n, cc.merge_degree)
    prefix = cc.cache.lookup(n1) if n1 > 0 else None
    if prefix is None:
        size = sum(bucket.size for bucket in cc.tree.active_buckets())
    else:
        size = prefix.size + sum(b.size for b in cc.tree.suffix_buckets(after=n1))
    # Perform the actual query so the cache stays in the per-bucket-query regime.
    cc.query_coreset()
    return size


def test_table1_query_work_growth(benchmark):
    rows = benchmark.pedantic(_measure_query_inputs, rounds=1, iterations=1)
    emit(
        format_table(
            rows,
            title="Table 1 (empirical): points merged per query, CT vs. CC",
            precision=0,
        )
    )

    ct_sizes = [row["CT points merged at query"] for row in rows]
    cc_sizes = [row["CC points merged at query"] for row in rows]

    # CT's query input grows with log N (more active buckets to union).
    assert ct_sizes[-1] > ct_sizes[0]
    # CC's query input stays bounded by ~r buckets regardless of N.
    assert max(cc_sizes) <= MERGE_DEGREE * BUCKET_SIZE + BUCKET_SIZE
    # And by the last checkpoint CT is merging substantially more than CC.
    assert ct_sizes[-1] >= 2 * cc_sizes[-1]
