"""Query-serving latency: warm-start pipeline vs. the from-scratch query path.

The paper's headline is *fast queries*; after the insert path was vectorized
(PR 1) the dominant per-query cost became the k-means++ + Lloyd extraction
re-run from scratch on every query.  This benchmark measures the serving
layer's effect under the harshest figure-5-style workload — a clustering
query after EVERY point (q = 1) — and records:

* per-query latency percentiles with warm-start refinement enabled vs.
  disabled (disabled reproduces the pre-serving-layer query path; the true
  pre-PR path was strictly slower because it also lacked the vectorized
  assignment/scatter kernels), and
* the warm/cold/drift and coreset-cache hit/miss counters threaded through
  ``StreamingClusterer.query``.

A second table shows the batched multi-k amortization: a figure-4-style
k-sweep answered by one ``query_multi_k`` call per algorithm.
"""

from __future__ import annotations

from _bench_utils import emit

from repro.bench.experiments import multi_k_query_costs, query_latency_profile
from repro.bench.report import format_series_table, format_table


def test_query_latency_q1_warm_vs_cold(covtype_points) -> None:
    """q=1 workload: warm-start serving must beat the cold path by >= 2x median."""
    points = covtype_points[:2000]
    k = 10
    algorithms = ("cc", "rcc")

    warm = query_latency_profile(
        points, algorithms=algorithms, k=k, query_interval=1, seed=0, warm_start=True
    )
    cold = query_latency_profile(
        points, algorithms=algorithms, k=k, query_interval=1, seed=0, warm_start=False
    )

    rows = []
    for name in algorithms:
        speedup = cold[name]["median_us"] / max(warm[name]["median_us"], 1e-9)
        rows.append(
            {
                "algorithm": name,
                "cold_median_us": cold[name]["median_us"],
                "warm_median_us": warm[name]["median_us"],
                "median_speedup": speedup,
                "cold_p95_us": cold[name]["p95_us"],
                "warm_p95_us": warm[name]["p95_us"],
                "warm_queries": warm[name]["warm"],
                "cold_fallbacks": warm[name]["cold"],
                "drift_fallbacks": warm[name]["drift_fallbacks"],
                "cache_hits": warm[name]["cache_hits"],
                "cache_misses": warm[name]["cache_misses"],
            }
        )
    emit(
        format_table(
            rows,
            title=(
                "Query latency (q=1): warm-start serving vs from-scratch "
                "k-means++ per query (covtype-like, k=10)"
            ),
            precision=1,
        )
    )

    for row in rows:
        # Acceptance: >= 2x median per-query speedup over the cold path.
        assert row["median_speedup"] >= 2.0, row
        # In a q=1 steady state nearly every query should be warm-served.
        assert row["warm_queries"] >= 0.9 * (row["warm_queries"] + row["cold_fallbacks"])

    # Warm and cold must agree on clustering quality (the property tests
    # bound this tightly; here we just guard against gross regressions).
    for name in algorithms:
        assert warm[name]["final_cost"] <= 2.0 * cold[name]["final_cost"] + 1e-9


def test_multi_k_sweep_amortizes_assembly(covtype_points) -> None:
    """One batched multi-k query reproduces the figure-4 cost-vs-k shape."""
    points = covtype_points[:4000]
    k_values = (10, 20, 30)
    results = multi_k_query_costs(
        points, k_values=k_values, algorithms=("ct", "cc", "rcc"), seed=0, n_init=3
    )
    emit(
        format_series_table(
            results,
            x_label="k",
            title=(
                "Multi-k batched query (one coreset assembly per algorithm): "
                "k-means cost vs k (covtype-like)"
            ),
            precision=1,
        )
    )
    for name, series in results.items():
        costs = [series[k] for k in k_values]
        # Cost must decrease as k grows (the figure-4 shape).
        assert costs[0] > costs[-1], (name, costs)
