"""Figure 11: OnlineCC total runtime vs. the switch threshold alpha.

Paper shape being reproduced: the runtime drops sharply between alpha = 1.2
and roughly 2.4 (far fewer fallbacks to the CC path), then flattens — larger
thresholds buy little additional speed.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import threshold_sweep
from repro.bench.report import format_table

from _bench_utils import emit

THRESHOLDS = (1.2, 2.4, 3.6, 4.8, 6.0)
K = 20


def _run(points):
    return threshold_sweep(points, thresholds=THRESHOLDS, k=K, query_interval=100, seed=0)


@pytest.mark.parametrize("dataset", ["covtype", "power"])
def test_fig11_runtime_vs_switch_threshold(benchmark, dataset, request):
    points = request.getfixturevalue(f"{dataset}_points")
    results = benchmark.pedantic(_run, args=(points,), rounds=1, iterations=1)

    rows = [
        {
            "alpha": alpha,
            "update_s": entry["update_seconds"],
            "query_s": entry["query_seconds"],
            "total_s": entry["total_seconds"],
            "final_cost": entry["final_cost"],
        }
        for alpha, entry in sorted(results.items())
    ]
    emit(
        format_table(
            rows,
            title=f"Figure 11 ({dataset}): OnlineCC runtime vs. switch threshold",
            precision=3,
        )
    )

    # Shape 1: query time at the loosest threshold is no more than at the
    # tightest threshold (fewer fallbacks can only help).
    assert results[6.0]["query_seconds"] <= results[1.2]["query_seconds"] * 1.1

    # Shape 2: most of the improvement is realised by alpha ~ 2.4; beyond
    # that the curve flattens (the remaining gain is comparatively small).
    drop_12_to_24 = results[1.2]["query_seconds"] - results[2.4]["query_seconds"]
    drop_24_to_60 = results[2.4]["query_seconds"] - results[6.0]["query_seconds"]
    assert drop_12_to_24 >= drop_24_to_60 - 0.05 * results[1.2]["query_seconds"]

    # Shape 3: accuracy does not collapse as the threshold loosens.
    assert results[6.0]["final_cost"] <= 3.0 * results[1.2]["final_cost"]
