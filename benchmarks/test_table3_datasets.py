"""Table 3: the evaluation datasets (name, size, dimension, description).

The benchmark regenerates the dataset overview table from the dataset
registry, checking that every stand-in matches the paper's dimensionality and
records the paper's full-scale sizes alongside the generated sizes.
"""

from __future__ import annotations

from repro.bench.experiments import dataset_table
from repro.bench.report import format_table
from repro.data.loaders import PAPER_SIZES

from _bench_utils import emit


def test_table3_dataset_overview(benchmark):
    rows = benchmark.pedantic(dataset_table, rounds=1, iterations=1)

    emit(
        format_table(
            rows,
            columns=[
                "dataset",
                "num_points",
                "dimension",
                "paper_num_points",
                "paper_dimension",
                "description",
            ],
            title="Table 3: datasets used in the experiments",
        )
    )

    assert {row["dataset"] for row in rows} == {"Covtype", "Power", "Intrusion", "Drift"}
    by_name = {row["dataset"].lower(): row for row in rows}
    for name, (paper_n, paper_d) in PAPER_SIZES.items():
        row = by_name[name]
        assert row["dimension"] == paper_d
        assert row["paper_num_points"] == paper_n
        assert row["num_points"] > 0
