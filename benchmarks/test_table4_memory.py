"""Table 4: memory cost (points stored and megabytes) per dataset per algorithm.

Paper shape being reproduced:
* streamkm++ uses the least memory (it keeps only the coreset tree).
* CC needs more (tree + cache) but stays below ~2x streamkm++.
* OnlineCC is essentially CC plus k online centers.
* RCC has the largest footprint.
"""

from __future__ import annotations

from repro.bench.experiments import memory_table
from repro.bench.report import format_table

from _bench_utils import emit

ALGORITHMS = ("streamkm++", "cc", "rcc", "onlinecc")
K = 20


def _run(datasets):
    return memory_table(datasets, algorithms=ALGORITHMS, k=K, query_interval=200, seed=0)


def test_table4_memory_cost(benchmark, all_datasets):
    rows = benchmark.pedantic(_run, args=(all_datasets,), rounds=1, iterations=1)

    emit(format_table(rows, title="Table 4: memory cost (points stored / MB)", precision=2))

    for row in rows:
        streamkm = row["streamkm++_points"]
        cc = row["cc_points"]
        rcc = row["rcc_points"]
        onlinecc = row["onlinecc_points"]

        # streamkm++ <= CC <= RCC; OnlineCC tracks CC closely.
        assert streamkm <= cc
        assert cc <= rcc
        assert abs(onlinecc - cc) <= K + 2 * K * 20  # k centers + one partial bucket

        # CC's overhead over streamkm++ stays within the paper's ~2x bound
        # (allow slack for the partial bucket on short streams).
        assert cc <= 2.5 * streamkm

        # Megabyte figures are consistent with the point counts.
        assert row["cc_mb"] > 0
        assert row["rcc_mb"] >= row["cc_mb"]
