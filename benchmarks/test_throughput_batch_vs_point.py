"""Update-throughput record: vectorized batch ingestion vs. the per-point path.

Not a figure from the paper — this benchmark pins down the ingestion-pipeline
speedup introduced by the zero-copy batch insert path (PR 1), so later PRs
have a recorded baseline.  It measures CT at the paper-scale bucket size
``m = 2000`` on a 100k-point covtype-like synthetic stream, in two regimes:

* ``sensitivity`` — the paper's default construction; merge cost (k-means++
  seeding) is shared by both paths, so the end-to-end speedup is modest.
* ``uniform`` — near-free merges; the numbers isolate the pipeline overhead
  itself, where the batch path is an order of magnitude faster.
"""

from __future__ import annotations

import time


from repro.bench.harness import StreamingExperiment, run_experiment
from repro.core.base import StreamingConfig
from repro.data.loaders import load_covtype
from repro.queries.schedule import FixedIntervalSchedule

from _bench_utils import emit

NUM_POINTS = 100_000
BUCKET_SIZE = 2_000
K = 20


def _measure(points, method: str) -> dict[str, dict[str, float]]:
    config = StreamingConfig(
        k=K, coreset_size=BUCKET_SIZE, coreset_method=method, seed=0
    )
    schedule = FixedIntervalSchedule(10_000_000)  # ingestion only
    rows: dict[str, dict[str, float]] = {}
    for mode in ("point", "batch"):
        experiment = StreamingExperiment(
            algorithm="ct", config=config, schedule=schedule, ingest_mode=mode
        )
        start = time.perf_counter()
        run = run_experiment(experiment, points)
        elapsed = time.perf_counter() - start
        rows[mode] = {
            "update_s": run.timing.update_seconds,
            "points_per_s": run.timing.update_points_per_second(),
            "us_per_point": run.timing.update_time_per_point() * 1e6,
            "wall_s": elapsed,
        }
    return rows


def test_throughput_batch_vs_point(benchmark):
    points = load_covtype(num_points=NUM_POINTS).points

    def run():
        return {method: _measure(points, method) for method in ("sensitivity", "uniform")}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        f"Throughput baseline: batch vs. point ingestion "
        f"(CT, covtype-like, n={NUM_POINTS:,}, m={BUCKET_SIZE}, k={K})",
        f"{'construction':<14} {'mode':<7} {'update s':>9} {'pts/s':>12} {'us/pt':>8}",
    ]
    for method, rows in results.items():
        for mode, row in rows.items():
            lines.append(
                f"{method:<14} {mode:<7} {row['update_s']:>9.3f} "
                f"{row['points_per_s']:>12,.0f} {row['us_per_point']:>8.2f}"
            )
        speedup = rows["point"]["update_s"] / rows["batch"]["update_s"]
        lines.append(f"{method:<14} speedup (point/batch): {speedup:.1f}x")
    emit("\n".join(lines))

    # Shape assertions: batching never loses, and with near-free merges the
    # pipeline itself is at least 3x faster (the tier-1 suite holds the
    # stricter 5x bound against the seed-style loop).
    for method in ("sensitivity", "uniform"):
        assert (
            results[method]["batch"]["update_s"]
            <= results[method]["point"]["update_s"]
        )
    assert (
        results["uniform"]["point"]["update_s"]
        >= 3.0 * results["uniform"]["batch"]["update_s"]
    )
