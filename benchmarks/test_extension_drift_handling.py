"""Extension benchmark: concept-drift handling with decay and sliding windows.

The paper's conclusion lists time-decaying weights as future work for
handling concept drift.  This benchmark creates an abrupt-shift stream (the
clusters jump to a new region halfway through), then compares:

* plain CC (remembers everything — its centers straddle both regimes),
* DecayedCoresetClusterer (exponential forgetting),
* SlidingWindowClusterer (hard cutoff).

Accuracy is measured on the *recent* part of the stream only, which is what a
drift-aware application cares about.  Both drift-aware variants should beat
plain CC on that metric.
"""

from __future__ import annotations

import numpy as np

from repro.bench.report import format_table
from repro.core.base import StreamingConfig
from repro.core.driver import CachedCoresetTreeClusterer
from repro.extensions.decay import DecayedCoresetClusterer, SlidingWindowClusterer
from repro.kmeans.cost import kmeans_cost

from _bench_utils import emit

K = 10


def _make_shift_stream(seed: int = 0, phase_points: int = 4000, dimension: int = 12):
    rng = np.random.default_rng(seed)
    old_centers = rng.normal(scale=10.0, size=(K, dimension))
    new_centers = old_centers + 200.0
    old = old_centers[rng.integers(0, K, phase_points)] + rng.normal(
        scale=1.0, size=(phase_points, dimension)
    )
    new = new_centers[rng.integers(0, K, phase_points)] + rng.normal(
        scale=1.0, size=(phase_points, dimension)
    )
    return np.vstack([old, new]), phase_points


def _run():
    points, phase_points = _make_shift_stream()
    recent = points[-phase_points // 2 :]
    config = StreamingConfig(k=K, seed=0)

    algorithms = {
        "cc (no forgetting)": CachedCoresetTreeClusterer(config),
        "decayed (gamma=0.7)": DecayedCoresetClusterer(config, decay=0.7),
        "sliding window (10 buckets)": SlidingWindowClusterer(config, window_buckets=10),
    }
    rows = []
    for name, clusterer in algorithms.items():
        clusterer.insert_many(points)
        centers = clusterer.query().centers
        rows.append(
            {
                "algorithm": name,
                "recent_cost": kmeans_cost(recent, centers),
                "full_stream_cost": kmeans_cost(points, centers),
                "stored_points": clusterer.stored_points(),
            }
        )
    return rows


def test_extension_drift_handling(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    emit(
        format_table(
            rows,
            title="Extension: drift handling — cost on the recent half-phase after an abrupt shift",
            precision=4,
        )
    )

    by_name = {row["algorithm"]: row for row in rows}
    plain = by_name["cc (no forgetting)"]["recent_cost"]
    decayed = by_name["decayed (gamma=0.7)"]["recent_cost"]
    window = by_name["sliding window (10 buckets)"]["recent_cost"]

    # Both drift-aware variants serve the recent regime at least as well as
    # plain CC, which must still devote centers to the abandoned old regime.
    assert decayed <= plain
    assert window <= plain
