"""Figure 5: total runtime over the stream vs. the query interval q.

Paper shape being reproduced:
* OnlineCC's total time is the smallest and essentially flat in q.
* streamkm++, CC, and RCC get cheaper as queries become rarer (larger q).
* CC is no slower than streamkm++ when queries are frequent (the caching
  speed-up), and all algorithms converge as q grows very large.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import time_vs_query_interval
from repro.bench.report import format_series_table

from _bench_utils import emit

INTERVALS = (50, 100, 200, 800, 3200)
ALGORITHMS = ("streamkm++", "cc", "rcc", "onlinecc")
K = 20


def _run_figure5(points):
    return time_vs_query_interval(
        points, intervals=INTERVALS, algorithms=ALGORITHMS, k=K, seed=0
    )


@pytest.mark.parametrize("dataset", ["covtype", "power"])
def test_fig5_total_time_vs_query_interval(benchmark, dataset, request):
    points = request.getfixturevalue(f"{dataset}_points")
    results = benchmark.pedantic(_run_figure5, args=(points,), rounds=1, iterations=1)

    emit(
        format_series_table(
            results,
            x_label="query interval q",
            title=f"Figure 5 ({dataset}): total time (s) vs. query interval",
            precision=3,
        )
    )

    smallest_q = INTERVALS[0]
    largest_q = INTERVALS[-1]

    # Shape 1: tree-based algorithms speed up when queries become rarer.
    for name in ("streamkm++", "cc", "rcc"):
        assert results[name][largest_q] < results[name][smallest_q]

    # Shape 2: OnlineCC is the cheapest at the highest query rate, and CC
    # does not lose to streamkm++ there (the point of coreset caching).
    assert results["onlinecc"][smallest_q] == min(
        results[name][smallest_q] for name in ALGORITHMS
    )
    assert results["cc"][smallest_q] <= 1.3 * results["streamkm++"][smallest_q]

    # Shape 3: OnlineCC's total time is far less sensitive to the query rate
    # than streamkm++'s.  (In the paper OnlineCC is essentially flat; at this
    # reduced stream scale its occasional CC fallbacks still scale mildly
    # with the number of queries, so we assert relative flatness.)
    online_ratio = results["onlinecc"][smallest_q] / results["onlinecc"][largest_q]
    streamkm_ratio = results["streamkm++"][smallest_q] / results["streamkm++"][largest_q]
    assert online_ratio <= streamkm_ratio
