"""Extension benchmark: streaming k-median with coreset caching.

The paper's conclusion suggests applying coreset caching to streaming
k-median.  This benchmark runs the k-median CC clusterer next to the k-means
CC clusterer on the Intrusion-like data (which contains injected outliers)
and checks the defining robustness property: measured by the k-median
objective, the k-median clusterer is at least as good as the k-means one,
while both remain far better than Sequential k-means.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import make_algorithm
from repro.bench.report import format_table
from repro.core.base import StreamingConfig
from repro.extensions.kmedian import KMedianCachedClusterer, KMedianConfig, kmedian_cost
from repro.kmeans.cost import kmeans_cost

from _bench_utils import emit

K = 15


def _run(points):
    kmeans_cc = make_algorithm("cc", StreamingConfig(k=K, seed=0))
    kmeans_cc.insert_many(points)
    kmeans_centers = kmeans_cc.query().centers

    kmedian_cc = KMedianCachedClusterer(KMedianConfig(k=K, seed=0))
    kmedian_cc.insert_many(points)
    kmedian_centers = kmedian_cc.query().centers

    sequential = make_algorithm("sequential", StreamingConfig(k=K, seed=0))
    sequential.insert_many(points)
    sequential_centers = sequential.query().centers

    rows = []
    for name, centers in (
        ("cc (k-means objective)", kmeans_centers),
        ("kmedian-cc", kmedian_centers),
        ("sequential", sequential_centers),
    ):
        rows.append(
            {
                "algorithm": name,
                "kmedian_cost": kmedian_cost(points, centers),
                "kmeans_cost": kmeans_cost(points, centers),
            }
        )
    return rows


@pytest.mark.parametrize("dataset", ["intrusion"])
def test_extension_streaming_kmedian(benchmark, dataset, request):
    points = request.getfixturevalue(f"{dataset}_points")
    rows = benchmark.pedantic(_run, args=(points,), rounds=1, iterations=1)

    emit(
        format_table(
            rows, title="Extension: streaming k-median vs. k-means CC (Intrusion-like)", precision=4
        )
    )

    by_name = {row["algorithm"]: row for row in rows}
    # Measured by the k-median objective, the k-median clusterer is
    # competitive with (not worse than ~1.3x) the k-means clusterer.
    assert by_name["kmedian-cc"]["kmedian_cost"] <= 1.3 * by_name["cc (k-means objective)"]["kmedian_cost"]
    # Both coreset-cached algorithms beat Sequential k-means under either objective.
    assert by_name["kmedian-cc"]["kmedian_cost"] < by_name["sequential"]["kmedian_cost"]
    assert by_name["cc (k-means objective)"]["kmeans_cost"] < by_name["sequential"]["kmeans_cost"]
