"""Small helpers shared by the benchmark files."""

from __future__ import annotations

import re
from pathlib import Path

# Reproduced tables are also written here so they survive pytest's output
# capturing (the default `pytest benchmarks/ --benchmark-only` run does not
# show stdout of passing tests).
RESULTS_DIR = Path(__file__).resolve().parent / "results"


def _slug(title: str) -> str:
    text = title.splitlines()[0].lower()
    text = re.sub(r"[^a-z0-9]+", "_", text).strip("_")
    return text or "table"


def emit(text: str) -> None:
    """Print a reproduced table and persist it under ``benchmarks/results/``.

    The printed copy shows up with ``pytest -s`` (or in captured output on
    failure); the persisted copy is what EXPERIMENTS.md points at so the
    regenerated figures/tables are inspectable after any benchmark run.
    """
    print("\n" + text + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{_slug(text)}.txt"
    path.write_text(text + "\n", encoding="utf-8")
