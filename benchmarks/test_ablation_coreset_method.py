"""Ablation: coreset construction method (sensitivity vs. uniform vs. k-means++).

DESIGN.md lists the coreset construction as a design choice worth ablating.
Sensitivity (importance) sampling is the construction the paper's Theorem 2
assumes; uniform sampling is the naive alternative; picking k-means++
representatives is what the original streamkm++ coreset trees do.  The
benchmark runs CC with each construction on the skewed Intrusion-like data,
where uniform sampling is expected to be the weakest because it under-samples
small, far-away clusters.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import StreamingExperiment, run_experiment
from repro.bench.report import format_table
from repro.core.base import StreamingConfig
from repro.queries.schedule import FixedIntervalSchedule

from _bench_utils import emit

METHODS = ("sensitivity", "uniform", "kmeanspp")
K = 20


def _run(points):
    rows = []
    for method in METHODS:
        config = StreamingConfig(k=K, coreset_method=method, seed=0)
        experiment = StreamingExperiment(
            algorithm="cc", config=config, schedule=FixedIntervalSchedule(200)
        )
        result = run_experiment(experiment, points)
        rows.append(
            {
                "coreset method": method,
                "final_cost": result.final_cost,
                "total_s": result.timing.total_seconds,
                "points_stored": result.memory.points_stored,
            }
        )
    return rows


@pytest.mark.parametrize("dataset", ["intrusion"])
def test_ablation_coreset_method(benchmark, dataset, request):
    points = request.getfixturevalue(f"{dataset}_points")
    rows = benchmark.pedantic(_run, args=(points,), rounds=1, iterations=1)

    emit(format_table(rows, title="Ablation: CC vs. coreset construction method", precision=4))

    by_method = {row["coreset method"]: row for row in rows}

    # The guided constructions (sensitivity sampling, k-means++ representatives)
    # should not lose to naive uniform sampling on skewed data.
    assert by_method["sensitivity"]["final_cost"] <= 1.2 * by_method["uniform"]["final_cost"]
    assert by_method["kmeanspp"]["final_cost"] <= 1.2 * by_method["uniform"]["final_cost"]
    # All three remain functional end to end.
    assert all(row["final_cost"] > 0 for row in rows)
