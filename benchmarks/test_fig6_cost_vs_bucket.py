"""Figure 6: k-means cost vs. bucket size m.

Paper shape being reproduced: clustering accuracy is essentially flat in the
bucket size — a bucket of 20k points is already enough (the paper's and
streamkm++'s default) and larger buckets do not change the cost materially.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import cost_vs_bucket_size
from repro.bench.report import format_series_table

from _bench_utils import emit

MULTIPLIERS = (20, 40, 60, 100)
ALGORITHMS = ("streamkm++", "cc", "rcc", "onlinecc")
K = 20


def _run_figure6(points):
    return cost_vs_bucket_size(
        points,
        bucket_multipliers=MULTIPLIERS,
        algorithms=ALGORITHMS,
        k=K,
        query_interval=200,
        seed=0,
    )


@pytest.mark.parametrize("dataset", ["covtype", "power"])
def test_fig6_cost_vs_bucket_size(benchmark, dataset, request):
    points = request.getfixturevalue(f"{dataset}_points")
    results = benchmark.pedantic(_run_figure6, args=(points,), rounds=1, iterations=1)

    emit(
        format_series_table(
            results,
            x_label="bucket size (x k)",
            title=f"Figure 6 ({dataset}): k-means cost vs. bucket size",
            precision=4,
        )
    )

    # Shape: for each algorithm the cost varies only mildly across bucket
    # sizes (no systematic blow-up or collapse).
    for name in ALGORITHMS:
        series = results[name]
        assert max(series.values()) <= 2.0 * min(series.values())

    # All algorithms agree with each other within a small factor at the
    # default bucket size (20k).
    at_default = [results[name][20] for name in ALGORITHMS]
    assert max(at_default) <= 2.5 * min(at_default)
