"""Figure 9: query time per point vs. Poisson query arrival rate.

Paper shape being reproduced:
* Query time per point drops as queries become rarer, for every algorithm.
* streamkm++ pays the most query time (no caching).
* OnlineCC pays the least (O(1) fast path).
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import poisson_queries
from repro.bench.report import format_nested_series

from _bench_utils import emit

MEAN_INTERVALS = (50, 200, 800, 3200)
ALGORITHMS = ("streamkm++", "cc", "rcc", "onlinecc")
K = 20


def _run(points):
    return poisson_queries(
        points, mean_intervals=MEAN_INTERVALS, algorithms=ALGORITHMS, k=K, seed=0
    )


@pytest.mark.parametrize("dataset", ["covtype"])
def test_fig9_query_time_vs_poisson_rate(benchmark, dataset, request):
    points = request.getfixturevalue(f"{dataset}_points")
    results = benchmark.pedantic(_run, args=(points,), rounds=1, iterations=1)

    emit(
        format_nested_series(
            results,
            x_label="mean query interval (1/lambda)",
            metric="query_us",
            title=f"Figure 9 ({dataset}): query time per point (us) vs. Poisson interval",
            precision=2,
        )
    )

    densest, sparsest = MEAN_INTERVALS[0], MEAN_INTERVALS[-1]

    # Shape 1: query time per point decreases when queries become rarer.
    for name in ALGORITHMS:
        assert results[name][sparsest]["query_us"] < results[name][densest]["query_us"]

    # Shape 2: at the densest query rate, streamkm++ is the most expensive of
    # the coreset-tree family and OnlineCC the cheapest overall.
    densest_queries = {name: results[name][densest]["query_us"] for name in ALGORITHMS}
    assert densest_queries["onlinecc"] == min(densest_queries.values())
    assert densest_queries["streamkm++"] >= densest_queries["cc"] * 0.8
