"""Figure 7: average runtime per point vs. bucket size m.

Paper shape being reproduced:
* Per-point runtime grows with the bucket size for every algorithm (both
  update and query work are proportional to m).
* OnlineCC has the smallest total per-point time at every bucket size.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import time_vs_bucket_size
from repro.bench.report import format_nested_series

from _bench_utils import emit

MULTIPLIERS = (20, 60, 100)
ALGORITHMS = ("streamkm++", "cc", "rcc", "onlinecc")
K = 20


def _run_figure7(points):
    return time_vs_bucket_size(
        points,
        bucket_multipliers=MULTIPLIERS,
        algorithms=ALGORITHMS,
        k=K,
        query_interval=200,
        seed=0,
    )


@pytest.mark.parametrize("dataset", ["covtype", "power"])
def test_fig7_runtime_vs_bucket_size(benchmark, dataset, request):
    points = request.getfixturevalue(f"{dataset}_points")
    results = benchmark.pedantic(_run_figure7, args=(points,), rounds=1, iterations=1)

    for metric in ("update_us", "query_us", "total_us"):
        emit(
            format_nested_series(
                results,
                x_label="bucket size (x k)",
                metric=metric,
                title=f"Figure 7 ({dataset}): {metric} per point vs. bucket size",
                precision=2,
            )
        )

    smallest, largest = MULTIPLIERS[0], MULTIPLIERS[-1]

    # Shape 1: total per-point time grows with bucket size for the
    # coreset-tree algorithms.
    for name in ("streamkm++", "cc"):
        assert results[name][largest]["total_us"] > results[name][smallest]["total_us"]

    # Shape 2: OnlineCC has the lowest query time per point everywhere.
    for multiplier in MULTIPLIERS:
        online_query = results["onlinecc"][multiplier]["query_us"]
        for name in ("streamkm++", "cc", "rcc"):
            assert online_query <= results[name][multiplier]["query_us"]
