"""Figure 7: average runtime per point vs. bucket size m.

Paper shape being reproduced:
* Per-point runtime grows with the bucket size for every algorithm (both
  update and query work are proportional to m).
* OnlineCC has the smallest total per-point time at every bucket size.

The shape assertions compare wall-clock measurements that are only tens of
milliseconds at this scale, so a single scheduler hiccup on a loaded CI box
can flip them.  The test therefore retries with fresh measurements and
asserts on the element-wise *median* across runs (up to three), emitting
every run's results regardless — measurements are always recorded even when
an early attempt was noisy.
"""

from __future__ import annotations

import statistics

import pytest

from repro.bench.experiments import time_vs_bucket_size
from repro.bench.report import format_nested_series
from repro.metrics.timing import timing_assertions_enabled

from _bench_utils import emit

MULTIPLIERS = (20, 60, 100)
ALGORITHMS = ("streamkm++", "cc", "rcc", "onlinecc")
K = 20
MAX_RUNS = 3


def _run_figure7(points):
    return time_vs_bucket_size(
        points,
        bucket_multipliers=MULTIPLIERS,
        algorithms=ALGORITHMS,
        k=K,
        query_interval=200,
        seed=0,
    )


def _median_results(runs):
    """Element-wise median of several figure-7 result mappings."""
    merged: dict = {}
    for name in runs[0]:
        merged[name] = {}
        for multiplier in runs[0][name]:
            merged[name][multiplier] = {
                metric: statistics.median(
                    run[name][multiplier][metric] for run in runs
                )
                for metric in runs[0][name][multiplier]
            }
    return merged


def _shape_violations(results) -> list[str]:
    """The figure's shape claims, as a list of violated descriptions."""
    violations = []
    smallest, largest = MULTIPLIERS[0], MULTIPLIERS[-1]

    # Shape 1: total per-point time grows with bucket size for the
    # coreset-tree algorithms.
    for name in ("streamkm++", "cc"):
        if not results[name][largest]["total_us"] > results[name][smallest]["total_us"]:
            violations.append(f"{name}: total_us not increasing with bucket size")

    # Shape 2: OnlineCC has the lowest query time per point everywhere.
    for multiplier in MULTIPLIERS:
        online_query = results["onlinecc"][multiplier]["query_us"]
        for name in ("streamkm++", "cc", "rcc"):
            if not online_query <= results[name][multiplier]["query_us"]:
                violations.append(
                    f"onlinecc query_us above {name} at multiplier {multiplier}"
                )
    return violations


@pytest.mark.parametrize("dataset", ["covtype", "power"])
def test_fig7_runtime_vs_bucket_size(benchmark, dataset, request):
    points = request.getfixturevalue(f"{dataset}_points")
    runs = [benchmark.pedantic(_run_figure7, args=(points,), rounds=1, iterations=1)]

    # Retry with fresh measurements while the median still violates a shape
    # claim: a real regression fails all three runs, scheduler noise doesn't.
    while _shape_violations(_median_results(runs)) and len(runs) < MAX_RUNS:
        runs.append(_run_figure7(points))

    results = _median_results(runs)
    for metric in ("update_us", "query_us", "total_us"):
        # Keep the title (and hence the recorded results filename) stable
        # across retry counts; the run count rides in the table body instead.
        emit(
            format_nested_series(
                results,
                x_label=f"bucket size (x k), median of {len(runs)}",
                metric=metric,
                title=f"Figure 7 ({dataset}): {metric} per point vs. bucket size",
                precision=2,
            )
        )

    violations = _shape_violations(results)
    if not timing_assertions_enabled():
        # Single-core (or explicitly opted-out) machine: the measurements
        # above were still taken and emitted, but wall-clock comparisons on
        # a contended core measure the scheduler, not the algorithms (see
        # docs/benchmarks.md).
        return
    assert not violations, f"median of {len(runs)} runs still violates: {violations}"
