"""Figure 4: k-means cost vs. number of clusters k.

Paper shape being reproduced:
* Sequential k-means has distinctly higher cost than every coreset-based
  algorithm (on the Intrusion data by orders of magnitude).
* streamkm++, CC, RCC, and OnlineCC all land within a small factor of the
  batch k-means++ baseline.
* Cost decreases as k grows for every algorithm.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import cost_vs_k
from repro.bench.report import format_series_table

from _bench_utils import emit

K_VALUES = (10, 20, 30)
ALGORITHMS = ("sequential", "streamkm++", "cc", "rcc", "onlinecc")


def _run_figure4(points, seed: int = 0):
    return cost_vs_k(
        points,
        k_values=K_VALUES,
        algorithms=ALGORITHMS,
        query_interval=200,
        include_batch=True,
        seed=seed,
        # 10 restarts at query time: the 3x-of-batch shape assertion below is
        # about coreset quality, not about k-means++ local-optimum luck.
        n_init=10,
    )


@pytest.mark.parametrize("dataset", ["covtype", "power", "intrusion", "drift"])
def test_fig4_cost_vs_k(benchmark, dataset, request):
    points = request.getfixturevalue(f"{dataset}_points")
    results = benchmark.pedantic(_run_figure4, args=(points,), rounds=1, iterations=1)

    emit(
        format_series_table(
            results,
            x_label="k",
            title=f"Figure 4 ({dataset}): k-means cost vs. number of clusters",
            precision=4,
        )
    )

    # Shape 1: cost decreases with k for the coreset algorithms and the batch baseline.
    for name in ("cc", "streamkm++", "kmeans++"):
        assert results[name][K_VALUES[-1]] < results[name][K_VALUES[0]]

    # Shape 2: every coreset-based algorithm tracks the batch baseline.
    for name in ("streamkm++", "cc", "rcc", "onlinecc"):
        for k in K_VALUES:
            assert results[name][k] <= 3.0 * results["kmeans++"][k]

    # Shape 3: Sequential k-means never beats CC and is far worse on the
    # heavily skewed Intrusion-like data.
    for k in K_VALUES:
        assert results["sequential"][k] >= 0.8 * results["cc"][k]
    if dataset == "intrusion":
        assert results["sequential"][K_VALUES[-1]] > 3.0 * results["cc"][K_VALUES[-1]]
